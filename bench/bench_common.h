// Shared harness for the figure-reproduction benchmarks.
//
// Every bench binary accepts:
//   --sf=<double>     TPC-H scale factor (default 0.1 ≈ 600 K lineitem rows;
//                     the paper used SF 10 = 60 M rows)
//   --points=<int>    number of selectivity points in sweeps (default 11)
//   --disk=<0|1>      charge the paper's 2006-disk latencies for cold block
//                     reads (default 1; reported runtimes = wall + charged)
//   --dir=<path>      database directory (default /tmp/cstore_bench_data,
//                     reused across runs)
//   --runs=<int>      timed repetitions per point, minimum reported (default 1)
//   --workers=<list>  comma-separated morsel-worker counts to sweep
//                     (default "1"; e.g. --workers=1,2,4,8 makes
//                     bench_fig11_selection print per-strategy scaling
//                     curves)
//   --concurrency=<list>  comma-separated in-flight query counts for
//                     bench_throughput's mixed-workload batches (default
//                     "8"; ignored by the figure benches)
//
// Output format: one whitespace-aligned table per figure panel with a
// `# fig=...` header line, mirroring the paper's series.

#ifndef CSTORE_BENCH_BENCH_COMMON_H_
#define CSTORE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "tpch/loader.h"
#include "util/logging.h"

namespace cstore {
namespace bench {

struct BenchOptions {
  double sf = 0.1;
  int points = 11;
  bool simulate_disk = true;
  std::string dir = "/tmp/cstore_bench_data";
  int runs = 1;
  // Morsel-worker counts to sweep; {1} = classic serial benchmarks.
  std::vector<int> worker_sweep = {1};
  // Concurrent in-flight query counts (bench_throughput only).
  std::vector<int> concurrency_sweep = {8};
};

inline std::vector<int> ParseIntList(const char* list) {
  std::vector<int> out;
  for (const char* p = list; *p != '\0';) {
    int v = std::atoi(p);
    if (v >= 1) out.push_back(v);
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out;
}

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--sf=", 5) == 0) {
      opts.sf = std::atof(a + 5);
    } else if (std::strncmp(a, "--points=", 9) == 0) {
      opts.points = std::atoi(a + 9);
    } else if (std::strncmp(a, "--disk=", 7) == 0) {
      opts.simulate_disk = std::atoi(a + 7) != 0;
    } else if (std::strncmp(a, "--dir=", 6) == 0) {
      opts.dir = a + 6;
    } else if (std::strncmp(a, "--runs=", 7) == 0) {
      opts.runs = std::max(1, std::atoi(a + 7));
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      opts.worker_sweep = ParseIntList(a + 10);
      if (opts.worker_sweep.empty()) opts.worker_sweep = {1};
    } else if (std::strncmp(a, "--concurrency=", 14) == 0) {
      opts.concurrency_sweep = ParseIntList(a + 14);
      if (opts.concurrency_sweep.empty()) opts.concurrency_sweep = {8};
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", a);
    }
  }
  return opts;
}

inline std::unique_ptr<db::Database> OpenBenchDb(const BenchOptions& opts) {
  db::Database::Options dbo;
  dbo.dir = opts.dir;
  dbo.pool_frames = 16384;  // 1 GB of 64 KB frames
  dbo.disk.enabled = opts.simulate_disk;
  dbo.disk.seek_micros = 2500.0;  // paper Table 2
  dbo.disk.read_micros = 1000.0;
  dbo.disk.prefetch_blocks = 1;
  auto db = db::Database::Open(dbo);
  CSTORE_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Reads a whole column into memory (for quantile computation).
inline std::vector<Value> ReadColumn(const codec::ColumnReader& reader) {
  std::vector<Value> out;
  out.reserve(reader.num_values());
  for (uint64_t b = 0; b < reader.num_blocks(); ++b) {
    auto blk = reader.FetchBlock(b);
    CSTORE_CHECK(blk.ok()) << blk.status().ToString();
    blk->view.Decompress(&out);
  }
  return out;
}

/// Value X such that (v < X) has selectivity ≈ q, plus the exact resulting
/// selectivity.
struct SelectivityPoint {
  double target;
  Value threshold;
  double actual;
};

inline std::vector<SelectivityPoint> SelectivitySweep(
    const std::vector<Value>& values, int points) {
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<SelectivityPoint> out;
  for (int i = 0; i < points; ++i) {
    double q = points == 1 ? 1.0 : static_cast<double>(i) / (points - 1);
    SelectivityPoint p;
    p.target = q;
    if (q >= 1.0) {
      p.threshold = sorted.back() + 1;
    } else {
      size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
      p.threshold = sorted[idx];
    }
    size_t below = std::lower_bound(sorted.begin(), sorted.end(),
                                    p.threshold) -
                   sorted.begin();
    p.actual = static_cast<double>(below) / sorted.size();
    out.push_back(p);
  }
  return out;
}

/// Exact selectivity of (v < x) in `values`.
inline double ExactSelectivity(const std::vector<Value>& values, Value x) {
  uint64_t n = 0;
  for (Value v : values) {
    if (v < x) ++n;
  }
  return static_cast<double>(n) / values.size();
}

/// Runs a selection query `runs` times cold (caches dropped), returning the
/// minimum total runtime in milliseconds.
inline double TimeSelection(db::Database* db, const plan::SelectionQuery& q,
                            plan::Strategy s, int runs,
                            const plan::PlanConfig& config = {},
                            plan::RunStats* last_stats = nullptr) {
  double best = 1e100;
  for (int r = 0; r < runs; ++r) {
    db->DropCaches();
    auto result = db->RunSelection(q, s, config);
    CSTORE_CHECK(result.ok()) << result.status().ToString();
    best = std::min(best, result->stats.TotalMillis());
    if (last_stats) *last_stats = result->stats;
  }
  return best;
}

inline double TimeAgg(db::Database* db, const plan::AggQuery& q,
                      plan::Strategy s, int runs,
                      const plan::PlanConfig& config = {},
                      plan::RunStats* last_stats = nullptr) {
  double best = 1e100;
  for (int r = 0; r < runs; ++r) {
    db->DropCaches();
    auto result = db->RunAgg(q, s, config);
    CSTORE_CHECK(result.ok()) << result.status().ToString();
    best = std::min(best, result->stats.TotalMillis());
    if (last_stats) *last_stats = result->stats;
  }
  return best;
}

inline double TimeJoin(db::Database* db, const plan::JoinQuery& q,
                       exec::JoinRightMode mode, int runs,
                       plan::RunStats* last_stats = nullptr) {
  double best = 1e100;
  for (int r = 0; r < runs; ++r) {
    db->DropCaches();
    auto result = db->RunJoin(q, mode);
    CSTORE_CHECK(result.ok()) << result.status().ToString();
    best = std::min(best, result->stats.TotalMillis());
    if (last_stats) *last_stats = result->stats;
  }
  return best;
}

/// Simple aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    CSTORE_CHECK(row.size() == headers_.size());
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    print_row(std::vector<std::string>(headers_.size(), "----"));
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// p-quantile of a latency sample in milliseconds (sorts a copy once per
/// call; pass the quantiles you need from one accumulated vector).
inline double Percentile(std::vector<double> ms, double q) {
  if (ms.empty()) return 0;
  std::sort(ms.begin(), ms.end());
  size_t idx = static_cast<size_t>(q * (ms.size() - 1));
  return ms[idx];
}

/// Machine-readable bench output: collects flat records and writes
/// BENCH_<name>.json in the working directory, so the perf trajectory of
/// every run is trackable (QPS, p50, p99 per sweep point). The file is one
/// object {"meta": {...}, "rows": [...]}: meta stamps the emission schema
/// version and the host's core count — numbers from a 2-core CI runner and
/// a 32-core workstation must not land on the same trend line.
class BenchJson {
 public:
  /// Bump when the emitted shape changes incompatibly (v1 was a bare
  /// array of row objects; v2 added the meta envelope).
  static constexpr int kSchemaVersion = 2;

  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  class Row {
   public:
    Row& Num(const char* key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Int(const char* key, uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& Str(const char* key, const std::string& v) {
      fields_.emplace_back(key, "\"" + v + "\"");  // values are bench-internal
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes BENCH_<name>.json; returns the path ("" on failure).
  std::string Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fprintf(f,
                 "{\n  \"meta\": {\"bench\": \"%s\", \"schema_version\": %d, "
                 "\"host_cores\": %u},\n  \"rows\": [\n",
                 name_.c_str(), kSchemaVersion,
                 std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      const auto& fields = rows_[i].fields_;
      for (size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "\"%s\": %s%s", fields[j].first.c_str(),
                     fields[j].second.c_str(),
                     j + 1 < fields.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return path;
  }

  /// The shared tail of every bench main: write the file and print the
  /// "# wrote ..." breadcrumb (or a warning when the write failed).
  void WriteAndReport() const {
    std::string path = Write();
    if (path.empty()) {
      std::fprintf(stderr, "# failed to write BENCH_%s.json\n",
                   name_.c_str());
      return;
    }
    std::printf("# wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace cstore

#endif  // CSTORE_BENCH_BENCH_COMMON_H_
