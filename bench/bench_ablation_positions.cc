// Ablation A-1: position-representation AND performance (Section 3.3's
// three cases). Measures intersection throughput for ranged, bit-mapped and
// listed inputs across densities, demonstrating:
//   * range ∧ range is O(#ranges), independent of cardinality;
//   * bitmap ∧ bitmap intersects kWordBits positions per instruction;
//   * single-range ∧ bitmap is ~constant time (boundary masking);
//   * lists win only when very sparse.

#include <cstdio>

#include "bench_common.h"
#include "position/position_set.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

namespace {

position::PositionSet MakeSet(position::PositionSet::Rep rep, size_t n,
                              double density, uint64_t seed) {
  Random rng(seed);
  switch (rep) {
    case position::PositionSet::Rep::kRanges: {
      // Clustered: one range covering `density` of the window.
      position::RangeSet rs;
      rs.Append(0, static_cast<Position>(n * density));
      return position::PositionSet::FromRanges(0, n, std::move(rs));
    }
    case position::PositionSet::Rep::kBitmap: {
      position::Bitmap bm(0, n);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(density)) bm.Set(i);
      }
      return position::PositionSet::FromBitmap(std::move(bm));
    }
    case position::PositionSet::Rep::kList: {
      position::PosList pl;
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(density)) pl.Append(i);
      }
      return position::PositionSet::FromList(0, n, std::move(pl));
    }
  }
  return position::PositionSet::Empty(0, n);
}

double TimeIntersect(const position::PositionSet& a,
                     const position::PositionSet& b, int iters) {
  Stopwatch sw;
  uint64_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    sink += position::PositionSet::Intersect(a, b).Cardinality();
  }
  asm volatile("" : : "r"(sink));
  return sw.ElapsedMicros() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  (void)ParseArgs(argc, argv);
  const size_t n = 1 << 20;  // 1M positions per window
  const int iters = 20;

  std::printf("Ablation A-1: AND of two position sets over a %zu-position "
              "window (microseconds per AND)\n\n",
              n);
  std::printf("# fig=ablation-positions\n");
  TablePrinter table({"density", "range&range", "bitmap&bitmap",
                      "range&bitmap", "list&list", "list&bitmap"});

  for (double density : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    using Rep = position::PositionSet::Rep;
    auto range_a = MakeSet(Rep::kRanges, n, density, 1);
    auto range_b = MakeSet(Rep::kRanges, n, density, 2);
    auto bm_a = MakeSet(Rep::kBitmap, n, density, 3);
    auto bm_b = MakeSet(Rep::kBitmap, n, density, 4);
    auto ls_a = MakeSet(Rep::kList, n, density, 5);
    auto ls_b = MakeSet(Rep::kList, n, density, 6);

    table.AddRow({Fmt(density, 3),
                  Fmt(TimeIntersect(range_a, range_b, iters), 2),
                  Fmt(TimeIntersect(bm_a, bm_b, iters), 2),
                  Fmt(TimeIntersect(range_a, bm_b, iters), 2),
                  Fmt(TimeIntersect(ls_a, ls_b, iters), 2),
                  Fmt(TimeIntersect(ls_a, bm_b, iters), 2)});
  }
  table.Print();
  std::printf(
      "\nrange&range and range&bitmap stay flat (the paper's 'constant "
      "number of instructions' case);\nbitmap&bitmap is flat in density "
      "(word-parallel); lists degrade as density grows.\n");
  return 0;
}
