// Observability overhead: proves the instrumentation earns its keep.
//
// The engine's trace/metric sites are supposed to be free when tracing is
// off — one relaxed atomic load and a branch each. This bench measures that
// claim two ways:
//
//   span-guard    microbenchmark of a disabled obs::SpanTimer construction
//                 + destruction (the exact code every instrumented site
//                 runs when tracing is off), and of an enabled one
//   workload      the same query batch through a pooled scheduler with
//                 tracing off and tracing on; reports QPS both ways and
//                 the estimated share of runtime the disabled checks cost
//                 (sites/query × ns/site ÷ query latency — must be < 2%)
//
//   ./build/bench_obs --sf=0.05 --runs=3
//
// Machine-readable output: BENCH_obs.json.

#include <string>
#include <vector>

#include "api/connection.h"
#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "tpch/loader.h"
#include "util/stopwatch.h"

namespace cstore {
namespace bench {
namespace {

/// ns per disabled/enabled SpanTimer round trip. The loop body mirrors an
/// instrumented site: construct, attach an arg, destruct.
double TimeSpanGuardNs(size_t iters) {
  Stopwatch sw;
  for (size_t i = 0; i < iters; ++i) {
    obs::SpanTimer span("bench_span", "bench");
    span.Arg("i", static_cast<int64_t>(i));
  }
  return sw.ElapsedMicros() * 1000.0 / static_cast<double>(iters);
}

/// ns per QueryLog::Record of a representative entry (SQL-sized label,
/// strategy/status strings, full stat payload) — the per-query cost the
/// always-on log adds to a scheduler finalize.
double TimeQueryLogRecordNs(obs::QueryLog* log, size_t iters) {
  Stopwatch sw;
  for (size_t i = 0; i < iters; ++i) {
    obs::QueryLogEntry e;
    e.query_id = i;
    e.label = "SELECT shipdate, SUM(quantity) FROM lineitem WHERE x < 42";
    e.strategy = "LM-parallel";
    e.status = "ok";
    e.workers = 4;
    e.priority = 1;
    e.queue_wait_usec = 10;
    e.exec_usec = 1000;
    e.total_usec = 1010;
    e.rows_out = 1234;
    e.cache_hits = 99;
    log->Record(std::move(e));
  }
  return sw.ElapsedMicros() * 1000.0 / static_cast<double>(iters);
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  opts.simulate_disk = false;  // pure CPU: overhead must not hide in charges
  auto db = OpenBenchDb(opts);
  auto li_r = tpch::LoadLineitem(db.get(), opts.sf);
  CSTORE_CHECK(li_r.ok()) << li_r.status().ToString();
  tpch::LineitemColumns li = std::move(li_r).value();

  BenchJson json("obs");
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();

  // --- span-guard microbenchmark -----------------------------------------
  constexpr size_t kGuardIters = 2000000;
  rec.set_enabled(false);
  TimeSpanGuardNs(kGuardIters / 10);  // warm up
  double disabled_ns = TimeSpanGuardNs(kGuardIters);
  rec.set_enabled(true);
  double enabled_ns = TimeSpanGuardNs(kGuardIters / 10);
  rec.set_enabled(false);
  rec.Clear();
  std::printf("span guard: disabled %.2f ns, enabled %.1f ns\n",
              disabled_ns, enabled_ns);
  json.AddRow()
      .Str("panel", "span_guard")
      .Num("disabled_ns", disabled_ns)
      .Num("enabled_ns", enabled_ns);

  // --- workload: tracing off vs on ---------------------------------------
  plan::SelectionQuery sel;
  Value mid =
      (li.shipdate->meta().min_value + li.shipdate->meta().max_value) / 2;
  sel.columns.push_back({li.shipdate, codec::Predicate::LessThan(mid)});
  sel.columns.push_back({li.quantity, codec::Predicate::LessThan(30)});
  plan::AggQuery agg;
  agg.selection = sel;
  agg.group_index = 0;
  agg.agg_index = 1;
  agg.func = exec::AggFunc::kSum;

  const int kBatch = 64;
  auto run_batch = [&](bool traced) {
    rec.set_enabled(traced);
    sched::Scheduler::Options so;
    so.num_workers = 4;
    sched::Scheduler scheduler(so);
    api::Connection conn(db.get(), &scheduler);
    double best_ms = 1e100;
    uint64_t morsels = 0;
    for (int r = 0; r < opts.runs; ++r) {
      rec.Clear();
      Stopwatch sw;
      std::vector<api::PendingResult> pending;
      pending.reserve(kBatch);
      for (int i = 0; i < kBatch; ++i) {
        pending.push_back(conn.Submit(
            i % 2 == 0 ? plan::PlanTemplate::Selection(
                             sel, plan::Strategy::kLmParallel)
                       : plan::PlanTemplate::Agg(
                             agg, plan::Strategy::kLmParallel),
            false));
      }
      for (auto& p : pending) {
        auto res = p.Wait();
        CSTORE_CHECK(res.ok()) << res.status().ToString();
      }
      best_ms = std::min(best_ms, sw.ElapsedMillis());
      if (traced) morsels = rec.Snapshot().size();
    }
    rec.set_enabled(false);
    return std::make_pair(best_ms, morsels);
  };

  auto [off_ms, unused] = run_batch(false);
  auto [on_ms, span_count] = run_batch(true);
  (void)unused;
  double off_qps = kBatch * 1000.0 / off_ms;
  double on_qps = kBatch * 1000.0 / on_ms;
  // Every span the enabled run recorded is a site the disabled run paid
  // one guard check for — the measured per-site cost bounds the disabled
  // overhead share.
  double sites_per_query =
      static_cast<double>(span_count) / static_cast<double>(kBatch);
  double query_ms = off_ms / kBatch;
  double disabled_pct =
      100.0 * (sites_per_query * disabled_ns / 1e6) / query_ms;
  double enabled_pct = 100.0 * (on_ms - off_ms) / off_ms;

  std::printf("workload (%d queries, 4 workers, best of %d):\n", kBatch,
              opts.runs);
  std::printf("  tracing off  %8.1f ms  %8.1f qps\n", off_ms, off_qps);
  std::printf("  tracing on   %8.1f ms  %8.1f qps  (%+.1f%%)\n", on_ms,
              on_qps, enabled_pct);
  std::printf(
      "  ~%.0f instrumented sites/query x %.2f ns/site = %.4f%% of query "
      "time while disabled (budget: 2%%)\n",
      sites_per_query, disabled_ns, disabled_pct);
  CSTORE_CHECK(disabled_pct < 2.0)
      << "disabled-tracing overhead estimate " << disabled_pct
      << "% exceeds the 2% budget";

  json.AddRow()
      .Str("panel", "workload")
      .Str("mode", "disabled")
      .Num("ms", off_ms)
      .Num("qps", off_qps);
  json.AddRow()
      .Str("panel", "workload")
      .Str("mode", "enabled")
      .Num("ms", on_ms)
      .Num("qps", on_qps)
      .Int("spans", span_count);
  json.AddRow()
      .Str("panel", "overhead")
      .Num("sites_per_query", sites_per_query)
      .Num("disabled_pct_est", disabled_pct)
      .Num("enabled_pct", enabled_pct);

  // --- workload: query log off vs on -------------------------------------
  // The query log is on by default (unlike tracing), so its recording cost
  // — one ring append per *query*, not per site — is always paid. Same
  // batch as above, log disabled vs enabled; the delta must stay under the
  // same 2% budget that governs the disabled-tracing sites.
  obs::QueryLog& qlog = obs::QueryLog::Global();
  auto run_qlog_batch = [&](bool logged) {
    qlog.set_enabled(logged);
    sched::Scheduler::Options so;
    so.num_workers = 4;
    sched::Scheduler scheduler(so);
    api::Connection conn(db.get(), &scheduler);
    double best_ms = 1e100;
    for (int r = 0; r < opts.runs; ++r) {
      Stopwatch sw;
      std::vector<api::PendingResult> pending;
      pending.reserve(kBatch);
      for (int i = 0; i < kBatch; ++i) {
        pending.push_back(conn.Submit(
            i % 2 == 0 ? plan::PlanTemplate::Selection(
                             sel, plan::Strategy::kLmParallel)
                       : plan::PlanTemplate::Agg(
                             agg, plan::Strategy::kLmParallel),
            false));
      }
      for (auto& p : pending) {
        auto res = p.Wait();
        CSTORE_CHECK(res.ok()) << res.status().ToString();
      }
      best_ms = std::min(best_ms, sw.ElapsedMillis());
    }
    qlog.set_enabled(true);  // the log is always-on outside this phase
    return best_ms;
  };

  double qlog_off_ms = run_qlog_batch(false);
  double qlog_on_ms = run_qlog_batch(true);
  double qlog_delta_pct = 100.0 * (qlog_on_ms - qlog_off_ms) / qlog_off_ms;

  // One Record per query: the budget check uses the measured per-record
  // cost against the per-query latency (same estimator as the disabled-
  // tracing sites above) — the raw batch delta is reported too, but at one
  // ~100 ns append per multi-ms query it is dominated by run noise.
  qlog.set_enabled(true);
  TimeQueryLogRecordNs(&qlog, 10000);  // warm up
  double record_ns = TimeQueryLogRecordNs(&qlog, 200000);
  double qlog_query_ms = qlog_off_ms / kBatch;
  double qlog_pct_est = 100.0 * (record_ns / 1e6) / qlog_query_ms;

  std::printf("query log (%d queries, 4 workers, best of %d):\n", kBatch,
              opts.runs);
  std::printf("  log off      %8.1f ms  %8.1f qps\n", qlog_off_ms,
              kBatch * 1000.0 / qlog_off_ms);
  std::printf("  log on       %8.1f ms  %8.1f qps  (delta %+.2f%%)\n",
              qlog_on_ms, kBatch * 1000.0 / qlog_on_ms, qlog_delta_pct);
  std::printf(
      "  1 record/query x %.0f ns/record = %.4f%% of query time "
      "(budget: 2%%)\n",
      record_ns, qlog_pct_est);
  CSTORE_CHECK(qlog_pct_est < 2.0)
      << "query-log overhead " << qlog_pct_est << "% exceeds the 2% budget";
  json.AddRow()
      .Str("panel", "query_log")
      .Str("mode", "disabled")
      .Num("ms", qlog_off_ms)
      .Num("qps", kBatch * 1000.0 / qlog_off_ms);
  json.AddRow()
      .Str("panel", "query_log")
      .Str("mode", "enabled")
      .Num("ms", qlog_on_ms)
      .Num("qps", kBatch * 1000.0 / qlog_on_ms)
      .Num("delta_pct", qlog_delta_pct);
  json.AddRow()
      .Str("panel", "query_log_overhead")
      .Num("record_ns", record_ns)
      .Num("overhead_pct_est", qlog_pct_est);

  json.WriteAndReport();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cstore

int main(int argc, char** argv) { return cstore::bench::Main(argc, argv); }
