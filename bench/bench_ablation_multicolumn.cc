// Ablation A-2: the multi-column optimization (Section 3.6). Runs the LM
// strategies on the Figure 11(b) workload with mini-columns enabled vs.
// disabled. Without them, DS3 (inside Merge) must re-fetch every column's
// blocks through the buffer pool — the column re-access cost of Section
// 2.2 — instead of reading the pinned mini-columns for free.

#include <cstdio>

#include "bench_common.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);

  auto lineitem_r = tpch::LoadLineitem(db.get(), opts.sf);
  CSTORE_CHECK(lineitem_r.ok()) << lineitem_r.status().ToString();
  tpch::LineitemColumns li = std::move(lineitem_r).value();

  std::vector<Value> shipdates = ReadColumn(*li.shipdate);
  auto sweep = SelectivitySweep(shipdates, opts.points);

  std::printf(
      "Ablation A-2: multi-column optimization on/off, LM strategies, "
      "selection query with RLE LINENUM (sf=%.3g, disk-sim=%d)\n\n",
      opts.sf, opts.simulate_disk);
  std::printf("# fig=ablation-multicolumn\n");
  TablePrinter table({"selectivity", "LM-par+mc", "LM-par-nomc",
                      "LM-pipe+mc", "LM-pipe-nomc", "refetched-blocks"});

  plan::PlanConfig with_mc;
  with_mc.use_multicolumn = true;
  plan::PlanConfig without_mc;
  without_mc.use_multicolumn = false;

  for (const SelectivityPoint& pt : sweep) {
    plan::SelectionQuery q;
    q.columns.push_back(
        {li.shipdate, codec::Predicate::LessThan(pt.threshold)});
    q.columns.push_back({li.linenum_rle, codec::Predicate::LessThan(7)});

    plan::RunStats mc_stats;
    plan::RunStats nomc_stats;
    double par_mc = TimeSelection(db.get(), q, plan::Strategy::kLmParallel,
                                  opts.runs, with_mc, &mc_stats);
    double par_nomc = TimeSelection(db.get(), q, plan::Strategy::kLmParallel,
                                    opts.runs, without_mc, &nomc_stats);
    double pipe_mc = TimeSelection(db.get(), q, plan::Strategy::kLmPipelined,
                                   opts.runs, with_mc);
    double pipe_nomc = TimeSelection(db.get(), q,
                                     plan::Strategy::kLmPipelined, opts.runs,
                                     without_mc);
    uint64_t refetched = nomc_stats.exec.blocks_fetched -
                         mc_stats.exec.blocks_fetched;
    table.AddRow({Fmt(pt.actual, 3), Fmt(par_mc), Fmt(par_nomc),
                  Fmt(pipe_mc), Fmt(pipe_nomc), std::to_string(refetched)});
  }
  table.Print();
  std::printf(
      "\nWithout mini-columns the Merge re-fetches blocks (buffer-pool "
      "hits, so no extra simulated I/O once warm within a query, but real "
      "re-scan CPU).\n");
  return 0;
}
