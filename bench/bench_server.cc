// SQL server front-end throughput: what the wire protocol costs and how
// admission control behaves under saturation.
//
// Serves the TPC-H lineitem projection over HTTP (server::Server on an
// ephemeral loopback port) and drives it three ways at each (worker count,
// connection count) point:
//
//   closed-loop   K connections, each issuing queries back-to-back — the
//                 classic saturation throughput measurement (QPS, p50/p99
//                 client-observed latency, vs the same statements through a
//                 direct in-process api::Connection for wire overhead)
//   open-loop     the same K connections issuing on a fixed schedule at
//                 0.5x / 1.0x / 1.5x the measured closed-loop rate, so
//                 queueing delay shows up in the tail once arrivals outrun
//                 capacity (latency no longer self-limits the load)
//   shed curve    K connections of a slow aggregation against admission
//                 caps swept downward — reporting what fraction of traffic
//                 sheds (HTTP 503) at each cap while every admitted query
//                 still returns correct results
//
// Every 200 response's CSV payload is checksum-verified against the direct
// api::Connection result; any mismatch fails the process, which makes this
// binary double as a CI smoke test for the whole server stack.
//
//   ./build/bench_server --sf=0.1 --workers=2 --concurrency=2,8

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/connection.h"
#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "tpch/loader.h"
#include "util/stopwatch.h"

namespace cstore {
namespace bench {
namespace {

struct SqlSpec {
  std::string name;
  std::string sql;
  // Direct-session ground truth.
  long long sum = 0;
  uint64_t rows = 0;
};

/// Sum of all numeric CSV fields plus the data row count — the same
/// order-independent checksum the server tests use.
void CsvChecksum(const std::string& body, long long* sum, uint64_t* rows) {
  *sum = 0;
  *rows = 0;
  size_t pos = body.find('\n');
  if (pos == std::string::npos) return;
  ++pos;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (eol > pos) {
      ++*rows;
      size_t f = pos;
      while (f < eol) {
        *sum += std::atoll(body.c_str() + f);
        size_t comma = body.find(',', f);
        if (comma == std::string::npos || comma >= eol) break;
        f = comma + 1;
      }
    }
    pos = eol + 1;
  }
}

std::vector<SqlSpec> BuildSpecs(db::Database* db) {
  std::vector<SqlSpec> specs = {
      {"sel", "SELECT shipdate, quantity FROM lineitem WHERE quantity < 5",
       0, 0},
      {"agg",
       "SELECT shipdate, SUM(quantity) FROM lineitem WHERE quantity < 30 "
       "GROUP BY shipdate",
       0, 0},
      {"count", "SELECT COUNT(quantity) FROM lineitem WHERE quantity < 10",
       0, 0},
  };
  api::Connection conn(db);
  for (SqlSpec& s : specs) {
    auto r = conn.Query(s.sql);
    CSTORE_CHECK(r.ok()) << s.sql << ": " << r.status().ToString();
    s.rows = r->tuples.num_tuples();
    for (size_t i = 0; i < r->tuples.num_tuples(); ++i) {
      for (uint32_t c = 0; c < r->tuples.width(); ++c) {
        s.sum += static_cast<long long>(r->tuples.value(i, c));
      }
    }
  }
  return specs;
}

struct LoopResult {
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
};

/// Drives `total` queries over `connections` clients. `interval_ms` = 0 is
/// closed-loop (send as fast as responses return); > 0 is open-loop: each
/// thread sends on a fixed schedule and the latency of a request includes
/// any backlog the schedule built up.
LoopResult DriveLoop(int port, const std::vector<SqlSpec>& specs,
                     int connections, uint64_t total, double interval_ms,
                     const char* priority, std::atomic<uint64_t>* mismatches) {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> shed{0}, failed{0};
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient client;
      if (!client.Connect("localhost", port).ok()) {
        failed.fetch_add(1);
        return;
      }
      Stopwatch pace;
      uint64_t sent = 0;
      for (;;) {
        const uint64_t i = next.fetch_add(1);
        if (i >= total) break;
        if (interval_ms > 0) {
          // Fixed schedule: request k fires at k * interval. Sleeping
          // (not skipping) preserves the arrival count when we fall
          // behind, so overload shows up as latency, not lost load.
          const double due = static_cast<double>(sent) * interval_ms;
          const double now = pace.ElapsedMillis();
          if (due > now) {
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>(due - now));
          }
        }
        ++sent;
        const SqlSpec& spec = specs[i % specs.size()];
        Stopwatch sw;
        auto r = client.Query(spec.sql, "csv", priority);
        if (!r.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (r->status == 503) {
          shed.fetch_add(1);
          continue;
        }
        if (r->status != 200) {
          failed.fetch_add(1);
          continue;
        }
        lat[t].push_back(sw.ElapsedMillis());
        long long sum = 0;
        uint64_t rows = 0;
        CsvChecksum(r->body, &sum, &rows);
        if (sum != spec.sum || rows != spec.rows) mismatches->fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  LoopResult out;
  out.wall_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.completed = all.size();
  out.shed = shed.load();
  out.failed = failed.load();
  out.qps = out.wall_s > 0 ? out.completed / out.wall_s : 0;
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  return out;
}

/// Direct-session closed loop (no server): the wire-overhead baseline.
LoopResult DriveDirect(db::Database* db, sched::Scheduler* scheduler,
                       const std::vector<SqlSpec>& specs, int connections,
                       uint64_t total, std::atomic<uint64_t>* mismatches) {
  std::atomic<uint64_t> next{0};
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      api::Connection conn(db, scheduler);
      for (;;) {
        const uint64_t i = next.fetch_add(1);
        if (i >= total) break;
        const SqlSpec& spec = specs[i % specs.size()];
        Stopwatch sw;
        auto r = conn.Query(spec.sql);
        if (!r.ok()) continue;
        lat[t].push_back(sw.ElapsedMillis());
        long long sum = 0;
        for (size_t j = 0; j < r->tuples.num_tuples(); ++j) {
          for (uint32_t c = 0; c < r->tuples.width(); ++c) {
            sum += static_cast<long long>(r->tuples.value(j, c));
          }
        }
        if (sum != spec.sum || r->tuples.num_tuples() != spec.rows) {
          mismatches->fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  LoopResult out;
  out.wall_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.completed = all.size();
  out.qps = out.wall_s > 0 ? out.completed / out.wall_s : 0;
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  return out;
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);
  auto li = tpch::LoadLineitem(db.get(), opts.sf);
  CSTORE_CHECK(li.ok()) << li.status().ToString();
  std::printf("# bench_server sf=%.2f rows=%llu\n", opts.sf,
              static_cast<unsigned long long>(li->num_rows));

  const std::vector<SqlSpec> specs = BuildSpecs(db.get());
  std::atomic<uint64_t> mismatches{0};
  BenchJson json("server");
  const uint64_t total = static_cast<uint64_t>(30) * opts.runs;

  for (int workers : opts.worker_sweep) {
    server::Server::Options so;
    so.pool_workers = workers;
    server::Server srv(db.get(), so);
    auto started = srv.Start();
    CSTORE_CHECK(started.ok()) << started.ToString();

    TablePrinter table({"mode", "W", "conns", "rate", "qps", "p50_ms",
                        "p99_ms", "done", "shed", "fail"});
    for (int conns : opts.concurrency_sweep) {
      // Wire-overhead baseline: same statements, direct sessions on the
      // server's scheduler.
      LoopResult direct = DriveDirect(db.get(), srv.scheduler(), specs,
                                      conns, total, &mismatches);
      json.AddRow()
          .Str("mode", "direct")
          .Int("workers", workers)
          .Int("connections", conns)
          .Num("qps", direct.qps)
          .Num("p50_ms", direct.p50_ms)
          .Num("p99_ms", direct.p99_ms)
          .Int("completed", direct.completed);
      table.AddRow({"direct", std::to_string(workers),
                    std::to_string(conns), "-", Fmt(direct.qps),
                    Fmt(direct.p50_ms, 2), Fmt(direct.p99_ms, 2),
                    std::to_string(direct.completed), "0", "0"});

      LoopResult closed = DriveLoop(srv.port(), specs, conns, total, 0,
                                    "normal", &mismatches);
      json.AddRow()
          .Str("mode", "closed")
          .Int("workers", workers)
          .Int("connections", conns)
          .Num("qps", closed.qps)
          .Num("p50_ms", closed.p50_ms)
          .Num("p99_ms", closed.p99_ms)
          .Int("completed", closed.completed)
          .Int("shed", closed.shed)
          .Int("failed", closed.failed);
      table.AddRow({"closed", std::to_string(workers),
                    std::to_string(conns), "-", Fmt(closed.qps),
                    Fmt(closed.p50_ms, 2), Fmt(closed.p99_ms, 2),
                    std::to_string(closed.completed),
                    std::to_string(closed.shed),
                    std::to_string(closed.failed)});

      // Open loop at fractions of the measured closed-loop rate: below
      // capacity the tail should match closed-loop; above it, queueing
      // delay compounds.
      for (double frac : {0.5, 1.0, 1.5}) {
        const double rate = closed.qps * frac;
        if (rate <= 0) continue;
        const double interval_ms = 1000.0 * conns / rate;
        LoopResult open = DriveLoop(srv.port(), specs, conns, total,
                                    interval_ms, "normal", &mismatches);
        json.AddRow()
            .Str("mode", "open")
            .Int("workers", workers)
            .Int("connections", conns)
            .Num("offered_qps", rate)
            .Num("qps", open.qps)
            .Num("p50_ms", open.p50_ms)
            .Num("p99_ms", open.p99_ms)
            .Int("completed", open.completed)
            .Int("shed", open.shed)
            .Int("failed", open.failed);
        table.AddRow({"open", std::to_string(workers),
                      std::to_string(conns), Fmt(rate), Fmt(open.qps),
                      Fmt(open.p50_ms, 2), Fmt(open.p99_ms, 2),
                      std::to_string(open.completed),
                      std::to_string(open.shed),
                      std::to_string(open.failed)});
      }
    }
    std::printf("# fig=server workers=%d\n", workers);
    table.Print();
    srv.Stop();
  }

  // Shed curve: a slow aggregation from many connections against admission
  // caps swept downward. Sheds are load-dependent (a fast box may overlap
  // few queries), so the fraction is reported, not asserted.
  {
    const std::vector<SqlSpec> slow = {{
        "agg_all",
        "SELECT shipdate, SUM(quantity) FROM lineitem GROUP BY shipdate",
        BuildSpecs(db.get())[1].sum,  // placeholder; recomputed below
        0,
    }};
    std::vector<SqlSpec> slow_specs = slow;
    {
      api::Connection conn(db.get());
      auto r = conn.Query(slow_specs[0].sql);
      CSTORE_CHECK(r.ok()) << r.status().ToString();
      slow_specs[0].sum = 0;
      slow_specs[0].rows = r->tuples.num_tuples();
      for (size_t i = 0; i < r->tuples.num_tuples(); ++i) {
        for (uint32_t c = 0; c < r->tuples.width(); ++c) {
          slow_specs[0].sum += static_cast<long long>(r->tuples.value(i, c));
        }
      }
    }
    TablePrinter table(
        {"cap", "conns", "qps", "p99_ms", "done", "shed", "shed_frac"});
    const int conns = std::max(
        8, *std::max_element(opts.concurrency_sweep.begin(),
                             opts.concurrency_sweep.end()));
    for (int cap : {16, 4, 2, 1}) {
      server::Server::Options so;
      so.pool_workers = opts.worker_sweep.front();
      so.admission.max_inflight = cap;
      server::Server srv(db.get(), so);
      auto started = srv.Start();
      CSTORE_CHECK(started.ok()) << started.ToString();
      LoopResult r = DriveLoop(srv.port(), slow_specs, conns,
                               static_cast<uint64_t>(conns) * 4, 0,
                               "normal", &mismatches);
      const double frac =
          r.completed + r.shed > 0
              ? static_cast<double>(r.shed) / (r.completed + r.shed)
              : 0;
      json.AddRow()
          .Str("mode", "shed")
          .Int("max_inflight", cap)
          .Int("connections", conns)
          .Num("qps", r.qps)
          .Num("p99_ms", r.p99_ms)
          .Int("completed", r.completed)
          .Int("shed", r.shed)
          .Num("shed_frac", frac);
      table.AddRow({std::to_string(cap), std::to_string(conns), Fmt(r.qps),
                    Fmt(r.p99_ms, 2), std::to_string(r.completed),
                    std::to_string(r.shed), Fmt(frac, 3)});
      srv.Stop();
    }
    std::printf("# fig=server_shed_curve\n");
    table.Print();
  }

  CSTORE_CHECK(mismatches.load() == 0)
      << mismatches.load() << " checksum mismatches vs direct session";
  std::printf("# all wire results checksum-verified against direct "
              "api::Connection\n");
  json.WriteAndReport();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cstore

int main(int argc, char** argv) { return cstore::bench::Main(argc, argv); }
