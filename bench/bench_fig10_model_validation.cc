// Figure 10: predicted (analytical model, Section 3) versus actual runtimes
// for the selection query
//
//   SELECT SHIPDATE, LINENUM FROM LINEITEM
//   WHERE SHIPDATE < X AND LINENUM < 7
//
// with both columns RLE encoded (the Section 3.7 configuration), sweeping
// the SHIPDATE selectivity. Panel (a) shows the LM strategies, panel (b)
// the EM strategies, each with model overlays.
//
// Model constants are calibrated on this machine (Calibrator, following the
// paper's methodology); SEEK/READ come from the simulated 2006 disk. The
// check is the paper's: the model should track the measured curves'
// magnitude and shape ("quite accurate at predicting the actual
// performance").

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "model/advisor.h"
#include "model/calibrate.h"
#include "model/cost_model.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);

  auto lineitem_r = tpch::LoadLineitem(db.get(), opts.sf);
  CSTORE_CHECK(lineitem_r.ok()) << lineitem_r.status().ToString();
  tpch::LineitemColumns li = std::move(lineitem_r).value();

  model::Calibrator::Options copts;
  copts.loop_size = 1 << 21;
  model::Calibrator calibrator(copts);
  model::CostParams params = calibrator.Run(*db->disk_model());
  std::printf("Figure 10: model validation (sf=%.3g, rows=%llu, disk-sim=%d)\n",
              opts.sf, static_cast<unsigned long long>(li.num_rows),
              opts.simulate_disk);
  std::printf("calibrated constants: %s\n", params.ToString().c_str());
  std::printf("paper Table 2:        %s\n\n",
              model::CostParams::Paper2006().ToString().c_str());

  std::vector<Value> shipdates = ReadColumn(*li.shipdate);
  std::vector<Value> linenums = ReadColumn(*li.linenum_rle);
  auto sweep = SelectivitySweep(shipdates, opts.points);
  double sf2 = ExactSelectivity(linenums, 7);

  model::SelectionModelInput input;
  input.col1 = model::ColumnStats::FromMeta(li.shipdate->meta());
  input.col2 = model::ColumnStats::FromMeta(li.linenum_rle->meta());
  input.sf2 = sf2;
  input.col1_clustered = true;

  struct Series {
    plan::Strategy strategy;
    std::vector<double> real;
    std::vector<double> predicted;
  };
  std::vector<Series> series = {
      {plan::Strategy::kLmParallel, {}, {}},
      {plan::Strategy::kLmPipelined, {}, {}},
      {plan::Strategy::kEmParallel, {}, {}},
      {plan::Strategy::kEmPipelined, {}, {}},
  };

  for (const SelectivityPoint& pt : sweep) {
    plan::SelectionQuery q;
    q.columns.push_back(
        {li.shipdate, codec::Predicate::LessThan(pt.threshold)});
    q.columns.push_back({li.linenum_rle, codec::Predicate::LessThan(7)});
    input.sf1 = pt.actual;
    for (Series& s : series) {
      s.real.push_back(TimeSelection(db.get(), q, s.strategy, opts.runs));
      s.predicted.push_back(
          model::PredictSelection(s.strategy, input, params).total() /
          1000.0);
    }
  }

  auto print_panel = [&](const char* fig, size_t first, size_t count) {
    std::printf("# fig=%s\n", fig);
    std::vector<std::string> headers = {"selectivity"};
    for (size_t i = first; i < first + count; ++i) {
      headers.push_back(std::string(StrategyName(series[i].strategy)) +
                        "-real");
      headers.push_back(std::string(StrategyName(series[i].strategy)) +
                        "-model");
    }
    TablePrinter table(headers);
    for (size_t p = 0; p < sweep.size(); ++p) {
      std::vector<std::string> row = {Fmt(sweep[p].actual, 3)};
      for (size_t i = first; i < first + count; ++i) {
        row.push_back(Fmt(series[i].real[p]));
        row.push_back(Fmt(series[i].predicted[p]));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  };

  print_panel("10a-late-materialization", 0, 2);
  print_panel("10b-early-materialization", 2, 2);

  // Model fidelity summary: geometric-mean ratio per strategy.
  std::printf("# model-fidelity (predicted/real ratio, geometric mean)\n");
  for (const Series& s : series) {
    double log_sum = 0;
    int n = 0;
    for (size_t p = 0; p < sweep.size(); ++p) {
      if (s.real[p] > 0.05 && s.predicted[p] > 0.05) {
        log_sum += std::log(s.predicted[p] / s.real[p]);
        ++n;
      }
    }
    std::printf("%-14s ratio=%.2f (n=%d)\n", StrategyName(s.strategy),
                n ? std::exp(log_sum / n) : 0.0, n);
  }
  return 0;
}
