// Figure 13: inner-table materialization strategies for the star-schema
// join
//
//   SELECT Orders.shipdate, Customer.nationcode
//   FROM Orders, Customer
//   WHERE Orders.custkey = Customer.custkey AND Orders.custkey < X
//
// with X swept so the orders predicate covers selectivity 0 → 1. The inner
// (customer) table is sent to the join as (i) materialized tuples, (ii) a
// multi-column, (iii) just the join-predicate column ("pure" LM).
//
// Paper shape to check: materialized ≈ multi-column (a FK-PK join
// materializes every matching inner row anyway), single-column much slower
// — its unsorted right positions force a non-merge positional fetch of
// nationcode.

#include <cstdio>

#include "bench_common.h"
#include "exec/join.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);

  auto join_r = tpch::LoadJoinTables(db.get(), opts.sf);
  CSTORE_CHECK(join_r.ok()) << join_r.status().ToString();
  tpch::JoinColumns jc = std::move(join_r).value();

  std::vector<Value> custkeys = ReadColumn(*jc.orders_custkey);
  auto sweep = SelectivitySweep(custkeys, opts.points);

  std::printf(
      "Figure 13: join inner-table materialization, Orders ⋈ Customer on "
      "custkey (sf=%.3g, orders=%llu, customers=%llu, disk-sim=%d, runs=%d)\n",
      opts.sf, static_cast<unsigned long long>(jc.num_orders),
      static_cast<unsigned long long>(jc.num_customers), opts.simulate_disk,
      opts.runs);
  std::printf("runtimes in ms (wall + simulated I/O)\n\n");
  std::printf("# fig=13-join-inner-table\n");

  TablePrinter table({"selectivity", "right-materialized",
                      "right-multicolumn", "right-single-column",
                      "join-results"});

  for (const SelectivityPoint& pt : sweep) {
    plan::JoinQuery q;
    q.left_key = jc.orders_custkey;
    q.left_pred = codec::Predicate::LessThan(pt.threshold);
    q.left_payload = jc.orders_shipdate;
    q.right_key = jc.customer_custkey;
    q.right_payload = jc.customer_nationcode;

    plan::RunStats stats;
    double t_mat = TimeJoin(db.get(), q, exec::JoinRightMode::kMaterialized,
                            opts.runs, &stats);
    uint64_t results = stats.output_tuples;
    double t_mc = TimeJoin(db.get(), q, exec::JoinRightMode::kMultiColumn,
                           opts.runs);
    double t_sc = TimeJoin(db.get(), q, exec::JoinRightMode::kSingleColumn,
                           opts.runs);
    table.AddRow({Fmt(pt.actual, 3), Fmt(t_mat), Fmt(t_mc), Fmt(t_sc),
                  std::to_string(results)});
  }
  table.Print();

  // Extension beyond the paper's figure: the outer table sent early-
  // materialized ("the join functions as it would in a standard row-store
  // system"), against the same three inner representations. The paper
  // discusses this case but plots only the late outer side.
  std::printf("\n# fig=ext-13-left-early (extension, not a paper panel)\n");
  TablePrinter ext({"selectivity", "right-materialized", "right-multicolumn",
                    "right-single-column"});
  for (const SelectivityPoint& pt : sweep) {
    plan::JoinQuery q;
    q.left_key = jc.orders_custkey;
    q.left_pred = codec::Predicate::LessThan(pt.threshold);
    q.left_payload = jc.orders_shipdate;
    q.right_key = jc.customer_custkey;
    q.right_payload = jc.customer_nationcode;
    q.left_mode = exec::JoinLeftMode::kEarly;
    ext.AddRow({Fmt(pt.actual, 3),
                Fmt(TimeJoin(db.get(), q, exec::JoinRightMode::kMaterialized,
                             opts.runs)),
                Fmt(TimeJoin(db.get(), q, exec::JoinRightMode::kMultiColumn,
                             opts.runs)),
                Fmt(TimeJoin(db.get(), q, exec::JoinRightMode::kSingleColumn,
                             opts.runs))});
  }
  ext.Print();
  return 0;
}
