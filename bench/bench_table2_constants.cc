// Table 2: the analytical model's constants. The paper measured them "by
// running the small segments of code that only performed the variable in
// question" on a 3.8 GHz Pentium 4; this harness re-runs that methodology on
// the present machine and prints both columns. SEEK/READ/PF are the
// simulated 2006 disk's parameters (real I/O here is page-cache speed).

#include <cstdio>

#include "bench_common.h"
#include "model/calibrate.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);

  model::Calibrator calibrator;
  model::CostParams measured = calibrator.Run(*db->disk_model());
  model::CostParams paper = model::CostParams::Paper2006();

  std::printf("Table 2: analytical model constants\n\n");
  std::printf("# fig=table2-constants\n");
  TablePrinter table({"constant", "paper-2006", "this-machine", "unit"});
  table.AddRow({"BIC", Fmt(paper.bic, 4), Fmt(measured.bic, 4),
                "microsecs"});
  table.AddRow({"TIC_TUP", Fmt(paper.tic_tup, 4), Fmt(measured.tic_tup, 4),
                "microsecs"});
  table.AddRow({"TIC_COL", Fmt(paper.tic_col, 4), Fmt(measured.tic_col, 4),
                "microsecs"});
  table.AddRow({"FC", Fmt(paper.fc, 4), Fmt(measured.fc, 4), "microsecs"});
  table.AddRow({"PF", Fmt(paper.pf, 0), Fmt(measured.pf, 0), "blocks"});
  table.AddRow({"SEEK", Fmt(paper.seek, 0), Fmt(measured.seek, 0),
                "microsecs"});
  table.AddRow({"READ", Fmt(paper.read, 0), Fmt(measured.read, 0),
                "microsecs"});
  table.AddRow({"WORD", Fmt(paper.word_bits, 0), Fmt(measured.word_bits, 0),
                "bits"});
  table.Print();
  std::printf(
      "\nNote: SEEK/READ on this machine reflect the DiskModel (--disk=%d); "
      "the paper's values are its 250GB 2006 SATA disk.\n",
      opts.simulate_disk);
  return 0;
}
