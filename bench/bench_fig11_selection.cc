// Figure 11: end-to-end runtimes of the four materialization strategies on
// the selection query
//
//   SELECT SHIPDATE, LINENUM FROM LINEITEM
//   WHERE SHIPDATE < X AND LINENUM < 7
//
// as X sweeps the SHIPDATE domain (selectivity 0 → 1), with the LINENUM
// column stored (a) uncompressed, (b) RLE, (c) bit-vector. LM-pipelined is
// omitted for (c), as in the paper (DS3 position filtering is not supported
// on bit-vector data).
//
// Paper shapes to check: (a) LM-pipelined wins at low selectivity (block
// skipping), EM-parallel at high; (b) both LM strategies beat both EM
// strategies, which pay RLE decompression for tuple construction; (c)
// EM-parallel ≈ LM-parallel (decompression dominates).

#include <cstdio>

#include "bench_common.h"
#include "codec/encoding.h"
#include "plan/strategy.h"

using namespace cstore;        // NOLINT
using namespace cstore::bench; // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  auto db = OpenBenchDb(opts);

  auto lineitem_r = tpch::LoadLineitem(db.get(), opts.sf);
  CSTORE_CHECK(lineitem_r.ok()) << lineitem_r.status().ToString();
  tpch::LineitemColumns li = std::move(lineitem_r).value();

  std::vector<Value> shipdates = ReadColumn(*li.shipdate);
  auto sweep = SelectivitySweep(shipdates, opts.points);

  std::printf(
      "Figure 11: selection query, SHIPDATE < X AND LINENUM < 7 "
      "(sf=%.3g, rows=%llu, disk-sim=%d, runs=%d)\n",
      opts.sf, static_cast<unsigned long long>(li.num_rows),
      opts.simulate_disk, opts.runs);
  std::printf("runtimes in ms (wall + simulated I/O)\n\n");

  struct Panel {
    const char* fig;
    codec::Encoding enc;
  };
  const Panel panels[] = {
      {"11a-linenum-uncompressed", codec::Encoding::kUncompressed},
      {"11b-linenum-rle", codec::Encoding::kRle},
      {"11c-linenum-bitvector", codec::Encoding::kBitVector},
      // Extension beyond the paper: dictionary-coded LINENUM — the other
      // light-weight scheme; supports all four strategies.
      {"ext-linenum-dict", codec::Encoding::kDict},
  };

  for (const Panel& panel : panels) {
    const codec::ColumnReader* linenum = li.linenum(panel.enc);
    std::printf("# fig=%s\n", panel.fig);
    bool has_lm_pipe = panel.enc != codec::Encoding::kBitVector;
    std::vector<std::string> headers = {"selectivity", "EM-pipelined",
                                        "EM-parallel", "LM-parallel"};
    if (has_lm_pipe) headers.push_back("LM-pipelined");
    TablePrinter table(headers);

    for (const SelectivityPoint& pt : sweep) {
      plan::SelectionQuery q;
      q.columns.push_back(
          {li.shipdate, codec::Predicate::LessThan(pt.threshold)});
      q.columns.push_back({linenum, codec::Predicate::LessThan(7)});

      std::vector<std::string> row = {Fmt(pt.actual, 3)};
      row.push_back(Fmt(
          TimeSelection(db.get(), q, plan::Strategy::kEmPipelined, opts.runs)));
      row.push_back(Fmt(
          TimeSelection(db.get(), q, plan::Strategy::kEmParallel, opts.runs)));
      row.push_back(Fmt(
          TimeSelection(db.get(), q, plan::Strategy::kLmParallel, opts.runs)));
      if (has_lm_pipe) {
        row.push_back(Fmt(TimeSelection(db.get(), q,
                                        plan::Strategy::kLmPipelined,
                                        opts.runs)));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }

  // Morsel-parallel scaling curves (beyond the paper): one selectivity point
  // per strategy, swept over --workers=... thread counts. Uses the
  // uncompressed LINENUM panel at the sweep's midpoint.
  if (opts.worker_sweep.size() > 1) {
    const SelectivityPoint& mid = sweep[sweep.size() / 2];
    plan::SelectionQuery q;
    q.columns.push_back(
        {li.shipdate, codec::Predicate::LessThan(mid.threshold)});
    q.columns.push_back({li.linenum_plain, codec::Predicate::LessThan(7)});

    // Wall time only: the simulated charged-I/O component is by design
    // unchanged by parallelism and would flatten the curves.
    std::printf("# fig=ext-parallel-scaling (selectivity=%.3f, wall ms)\n",
                mid.actual);
    std::vector<std::string> headers = {"workers", "EM-pipelined",
                                        "EM-parallel", "LM-parallel",
                                        "LM-pipelined"};
    TablePrinter table(headers);
    for (int workers : opts.worker_sweep) {
      plan::PlanConfig config;
      config.num_workers = workers;
      // One chunk window per morsel: maximizes the number of morsels so
      // requested workers get work (still clamped to one worker when the
      // table has fewer rows than a 64K-position window — use sf >= 0.1
      // for a genuine multi-threaded sweep).
      config.morsel_positions = kChunkPositions;
      std::vector<std::string> row = {std::to_string(workers)};
      for (plan::Strategy s :
           {plan::Strategy::kEmPipelined, plan::Strategy::kEmParallel,
            plan::Strategy::kLmParallel, plan::Strategy::kLmPipelined}) {
        double best_wall = 1e100;
        for (int r = 0; r < opts.runs; ++r) {
          db->DropCaches();
          auto result = db->RunSelection(q, s, config);
          CSTORE_CHECK(result.ok()) << result.status().ToString();
          best_wall = std::min(best_wall, result->stats.wall_micros / 1000.0);
        }
        row.push_back(Fmt(best_wall));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
