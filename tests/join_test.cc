// Join tests: the three inner-table materialization strategies must return
// identical results, matching a naive reference join; statistics reflect
// their different access patterns.

#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using exec::JoinRightMode;
using testing::TempDir;

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 2048;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  struct Tables {
    std::vector<Value> left_key;
    std::vector<Value> left_payload;
    std::vector<Value> right_key;  // unique
    std::vector<Value> right_payload;
    plan::JoinQuery query;
  };

  Tables MakeTables(size_t nleft, size_t nright, uint64_t seed) {
    Tables t;
    Random rng(seed);
    for (size_t i = 0; i < nright; ++i) {
      t.right_key.push_back(static_cast<Value>(i + 1));
      t.right_payload.push_back(static_cast<Value>(rng.Uniform(25)));
    }
    for (size_t i = 0; i < nleft; ++i) {
      t.left_key.push_back(
          static_cast<Value>(rng.UniformRange(1, static_cast<int64_t>(nright))));
      t.left_payload.push_back(static_cast<Value>(rng.Uniform(3000)));
    }
    t.query.left_key = Load("lk" + std::to_string(seed),
                            Encoding::kUncompressed, t.left_key);
    t.query.left_payload = Load("lp" + std::to_string(seed),
                                Encoding::kUncompressed, t.left_payload);
    t.query.right_key = Load("rk" + std::to_string(seed),
                             Encoding::kUncompressed, t.right_key);
    t.query.right_payload = Load("rp" + std::to_string(seed),
                                 Encoding::kUncompressed, t.right_payload);
    return t;
  }

  /// Reference join as a bag of (left_payload, right_payload) rows.
  static std::multiset<std::pair<Value, Value>> NaiveJoin(const Tables& t,
                                                          Value x) {
    std::map<Value, Value> right;
    for (size_t i = 0; i < t.right_key.size(); ++i) {
      right[t.right_key[i]] = t.right_payload[i];
    }
    std::multiset<std::pair<Value, Value>> out;
    for (size_t i = 0; i < t.left_key.size(); ++i) {
      if (t.left_key[i] >= x) continue;
      auto it = right.find(t.left_key[i]);
      if (it != right.end()) {
        out.emplace(t.left_payload[i], it->second);
      }
    }
    return out;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

constexpr JoinRightMode kAllModes[] = {JoinRightMode::kMaterialized,
                                       JoinRightMode::kMultiColumn,
                                       JoinRightMode::kSingleColumn};

TEST_F(JoinTest, AllModesMatchNaiveJoin) {
  Tables t = MakeTables(120000, 8000, 1);
  for (Value x : {Value{0}, Value{2000}, Value{8001}}) {
    t.query.left_pred = Predicate::LessThan(x);
    auto expected = NaiveJoin(t, x);
    for (JoinRightMode mode : kAllModes) {
      auto result = db_->RunJoin(t.query, mode);
      ASSERT_TRUE(result.ok())
          << JoinRightModeName(mode) << ": " << result.status().ToString();
      std::multiset<std::pair<Value, Value>> got;
      for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
        got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
      }
      EXPECT_TRUE(got == expected)
          << JoinRightModeName(mode) << " x=" << x << " got " << got.size()
          << " expected " << expected.size();
    }
  }
}

TEST_F(JoinTest, ModesAgreeOnChecksum) {
  Tables t = MakeTables(200000, 15000, 2);
  t.query.left_pred = Predicate::LessThan(9000);
  uint64_t checksum = 0;
  bool first = true;
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(t.query, mode);
    ASSERT_TRUE(result.ok());
    if (first) {
      checksum = result->stats.checksum;
      first = false;
    } else {
      EXPECT_EQ(result->stats.checksum, checksum) << JoinRightModeName(mode);
    }
  }
}

TEST_F(JoinTest, MaterializedConstructsInnerTuplesAtBuild) {
  Tables t = MakeTables(50000, 5000, 3);
  t.query.left_pred = Predicate::LessThan(1);  // empty probe result
  auto mat = db_->RunJoin(t.query, JoinRightMode::kMaterialized);
  auto sc = db_->RunJoin(t.query, JoinRightMode::kSingleColumn);
  ASSERT_TRUE(mat.ok() && sc.ok());
  // Even with no output, the materialized mode built all inner tuples.
  EXPECT_GE(mat->stats.exec.tuples_constructed, 5000u);
  EXPECT_LT(sc->stats.exec.tuples_constructed, 100u);
}

TEST_F(JoinTest, DanglingForeignKeysDropped) {
  // Left keys outside the right table's domain must not match.
  std::vector<Value> lk = {1, 2, 999, 3, 500};
  std::vector<Value> lp = {10, 20, 30, 40, 50};
  std::vector<Value> rk = {1, 2, 3};
  std::vector<Value> rp = {7, 8, 9};
  plan::JoinQuery q;
  q.left_key = Load("dk", Encoding::kUncompressed, lk);
  q.left_payload = Load("dp", Encoding::kUncompressed, lp);
  q.right_key = Load("dr", Encoding::kUncompressed, rk);
  q.right_payload = Load("dq", Encoding::kUncompressed, rp);
  q.left_pred = Predicate::True();
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(q, mode);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->tuples.num_tuples(), 3u) << JoinRightModeName(mode);
    EXPECT_EQ(result->tuples.value(0, 0), 10);
    EXPECT_EQ(result->tuples.value(0, 1), 7);
    EXPECT_EQ(result->tuples.value(2, 0), 40);
    EXPECT_EQ(result->tuples.value(2, 1), 9);
  }
}

TEST_F(JoinTest, RleLeftPayloadWorks) {
  // The left payload can be RLE encoded; the in-order gather handles runs.
  const size_t n = 80000;
  Random rng(5);
  std::vector<Value> lk;
  std::vector<Value> lp = testing::SortedRunnyValues(n, 50, 100.0, 5);
  std::vector<Value> rk;
  std::vector<Value> rp;
  for (size_t i = 0; i < 4000; ++i) {
    rk.push_back(static_cast<Value>(i + 1));
    rp.push_back(static_cast<Value>(rng.Uniform(25)));
  }
  for (size_t i = 0; i < n; ++i) {
    lk.push_back(static_cast<Value>(rng.UniformRange(1, 4000)));
  }
  plan::JoinQuery q;
  q.left_key = Load("rl_lk", Encoding::kUncompressed, lk);
  q.left_payload = Load("rl_lp", Encoding::kRle, lp);
  q.right_key = Load("rl_rk", Encoding::kUncompressed, rk);
  q.right_payload = Load("rl_rp", Encoding::kUncompressed, rp);
  q.left_pred = Predicate::LessThan(2000);

  std::multiset<std::pair<Value, Value>> expected;
  for (size_t i = 0; i < n; ++i) {
    if (lk[i] < 2000) expected.emplace(lp[i], rp[lk[i] - 1]);
  }
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(q, mode);
    ASSERT_TRUE(result.ok());
    std::multiset<std::pair<Value, Value>> got;
    for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
      got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
    }
    EXPECT_TRUE(got == expected) << JoinRightModeName(mode);
  }
}

TEST_F(JoinTest, EarlyLeftModeAgreesWithLate) {
  Tables t = MakeTables(90000, 6000, 11);
  for (Value x : {Value{0}, Value{3000}, Value{6001}}) {
    t.query.left_pred = Predicate::LessThan(x);
    auto expected = NaiveJoin(t, x);
    for (JoinRightMode mode : kAllModes) {
      plan::JoinQuery early = t.query;
      early.left_mode = exec::JoinLeftMode::kEarly;
      auto result = db_->RunJoin(early, mode);
      ASSERT_TRUE(result.ok())
          << JoinRightModeName(mode) << ": " << result.status().ToString();
      std::multiset<std::pair<Value, Value>> got;
      for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
        got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
      }
      EXPECT_TRUE(got == expected)
          << "early-left " << JoinRightModeName(mode) << " x=" << x;
    }
  }
}

TEST_F(JoinTest, EarlyLeftScansEverythingLateSkips) {
  // With an empty probe predicate, the late outer side still avoids
  // constructing tuples, while the early side constructs none either —
  // but the early side always scans the payload column.
  Tables t = MakeTables(80000, 4000, 13);
  t.query.left_pred = Predicate::LessThan(1);  // ~nothing matches
  plan::JoinQuery late = t.query;
  plan::JoinQuery early = t.query;
  early.left_mode = exec::JoinLeftMode::kEarly;
  auto late_r = db_->RunJoin(late, JoinRightMode::kMaterialized);
  auto early_r = db_->RunJoin(early, JoinRightMode::kMaterialized);
  ASSERT_TRUE(late_r.ok() && early_r.ok());
  EXPECT_EQ(late_r->stats.output_tuples, early_r->stats.output_tuples);
  // Early scans both outer columns fully; late never touches the payload.
  EXPECT_GT(early_r->stats.exec.blocks_fetched,
            late_r->stats.exec.blocks_fetched);
}

TEST_F(JoinTest, InvalidQueriesRejected) {
  plan::JoinQuery q;  // all null
  EXPECT_FALSE(
      plan::BuildJoinPlan(q, JoinRightMode::kMaterialized, {}).ok());

  Tables t = MakeTables(1000, 100, 7);
  plan::JoinQuery bad = t.query;
  bad.left_payload = Load("short", Encoding::kUncompressed, {1, 2, 3});
  EXPECT_FALSE(
      plan::BuildJoinPlan(bad, JoinRightMode::kMaterialized, {}).ok());
}

}  // namespace
}  // namespace cstore
