// Join tests: the three inner-table materialization strategies must return
// identical results, matching a naive reference join; statistics reflect
// their different access patterns.
//
// The two-phase (build/probe) refactor adds two invariants, checked below:
// every right-mode × left-mode result bag is bit-identical across 1/2/4
// probe workers, and joins against write-carrying snapshots (pending
// inserts + deletes + an UPDATE'd row, on both sides) match a brute-force
// reference join over the visible rows.

#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "api/connection.h"
#include "db/database.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using exec::JoinRightMode;
using testing::TempDir;

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 2048;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  struct Tables {
    std::vector<Value> left_key;
    std::vector<Value> left_payload;
    std::vector<Value> right_key;  // unique
    std::vector<Value> right_payload;
    plan::JoinQuery query;
  };

  Tables MakeTables(size_t nleft, size_t nright, uint64_t seed) {
    Tables t;
    Random rng(seed);
    for (size_t i = 0; i < nright; ++i) {
      t.right_key.push_back(static_cast<Value>(i + 1));
      t.right_payload.push_back(static_cast<Value>(rng.Uniform(25)));
    }
    for (size_t i = 0; i < nleft; ++i) {
      t.left_key.push_back(
          static_cast<Value>(rng.UniformRange(1, static_cast<int64_t>(nright))));
      t.left_payload.push_back(static_cast<Value>(rng.Uniform(3000)));
    }
    t.query.left_key = Load("lk" + std::to_string(seed),
                            Encoding::kUncompressed, t.left_key);
    t.query.left_payload = Load("lp" + std::to_string(seed),
                                Encoding::kUncompressed, t.left_payload);
    t.query.right_key = Load("rk" + std::to_string(seed),
                             Encoding::kUncompressed, t.right_key);
    t.query.right_payload = Load("rp" + std::to_string(seed),
                                 Encoding::kUncompressed, t.right_payload);
    return t;
  }

  /// Reference join as a bag of (left_payload, right_payload) rows.
  static std::multiset<std::pair<Value, Value>> NaiveJoin(const Tables& t,
                                                          Value x) {
    std::map<Value, Value> right;
    for (size_t i = 0; i < t.right_key.size(); ++i) {
      right[t.right_key[i]] = t.right_payload[i];
    }
    std::multiset<std::pair<Value, Value>> out;
    for (size_t i = 0; i < t.left_key.size(); ++i) {
      if (t.left_key[i] >= x) continue;
      auto it = right.find(t.left_key[i]);
      if (it != right.end()) {
        out.emplace(t.left_payload[i], it->second);
      }
    }
    return out;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

constexpr JoinRightMode kAllModes[] = {JoinRightMode::kMaterialized,
                                       JoinRightMode::kMultiColumn,
                                       JoinRightMode::kSingleColumn};

TEST_F(JoinTest, AllModesMatchNaiveJoin) {
  Tables t = MakeTables(120000, 8000, 1);
  for (Value x : {Value{0}, Value{2000}, Value{8001}}) {
    t.query.left_pred = Predicate::LessThan(x);
    auto expected = NaiveJoin(t, x);
    for (JoinRightMode mode : kAllModes) {
      auto result = db_->RunJoin(t.query, mode);
      ASSERT_TRUE(result.ok())
          << JoinRightModeName(mode) << ": " << result.status().ToString();
      std::multiset<std::pair<Value, Value>> got;
      for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
        got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
      }
      EXPECT_TRUE(got == expected)
          << JoinRightModeName(mode) << " x=" << x << " got " << got.size()
          << " expected " << expected.size();
    }
  }
}

TEST_F(JoinTest, ModesAgreeOnChecksum) {
  Tables t = MakeTables(200000, 15000, 2);
  t.query.left_pred = Predicate::LessThan(9000);
  uint64_t checksum = 0;
  bool first = true;
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(t.query, mode);
    ASSERT_TRUE(result.ok());
    if (first) {
      checksum = result->stats.checksum;
      first = false;
    } else {
      EXPECT_EQ(result->stats.checksum, checksum) << JoinRightModeName(mode);
    }
  }
}

TEST_F(JoinTest, MaterializedConstructsInnerTuplesAtBuild) {
  Tables t = MakeTables(50000, 5000, 3);
  t.query.left_pred = Predicate::LessThan(1);  // empty probe result
  auto mat = db_->RunJoin(t.query, JoinRightMode::kMaterialized);
  auto sc = db_->RunJoin(t.query, JoinRightMode::kSingleColumn);
  ASSERT_TRUE(mat.ok() && sc.ok());
  // Even with no output, the materialized mode built all inner tuples.
  EXPECT_GE(mat->stats.exec.tuples_constructed, 5000u);
  EXPECT_LT(sc->stats.exec.tuples_constructed, 100u);
}

TEST_F(JoinTest, DanglingForeignKeysDropped) {
  // Left keys outside the right table's domain must not match.
  std::vector<Value> lk = {1, 2, 999, 3, 500};
  std::vector<Value> lp = {10, 20, 30, 40, 50};
  std::vector<Value> rk = {1, 2, 3};
  std::vector<Value> rp = {7, 8, 9};
  plan::JoinQuery q;
  q.left_key = Load("dk", Encoding::kUncompressed, lk);
  q.left_payload = Load("dp", Encoding::kUncompressed, lp);
  q.right_key = Load("dr", Encoding::kUncompressed, rk);
  q.right_payload = Load("dq", Encoding::kUncompressed, rp);
  q.left_pred = Predicate::True();
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(q, mode);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->tuples.num_tuples(), 3u) << JoinRightModeName(mode);
    EXPECT_EQ(result->tuples.value(0, 0), 10);
    EXPECT_EQ(result->tuples.value(0, 1), 7);
    EXPECT_EQ(result->tuples.value(2, 0), 40);
    EXPECT_EQ(result->tuples.value(2, 1), 9);
  }
}

TEST_F(JoinTest, RleLeftPayloadWorks) {
  // The left payload can be RLE encoded; the in-order gather handles runs.
  const size_t n = 80000;
  Random rng(5);
  std::vector<Value> lk;
  std::vector<Value> lp = testing::SortedRunnyValues(n, 50, 100.0, 5);
  std::vector<Value> rk;
  std::vector<Value> rp;
  for (size_t i = 0; i < 4000; ++i) {
    rk.push_back(static_cast<Value>(i + 1));
    rp.push_back(static_cast<Value>(rng.Uniform(25)));
  }
  for (size_t i = 0; i < n; ++i) {
    lk.push_back(static_cast<Value>(rng.UniformRange(1, 4000)));
  }
  plan::JoinQuery q;
  q.left_key = Load("rl_lk", Encoding::kUncompressed, lk);
  q.left_payload = Load("rl_lp", Encoding::kRle, lp);
  q.right_key = Load("rl_rk", Encoding::kUncompressed, rk);
  q.right_payload = Load("rl_rp", Encoding::kUncompressed, rp);
  q.left_pred = Predicate::LessThan(2000);

  std::multiset<std::pair<Value, Value>> expected;
  for (size_t i = 0; i < n; ++i) {
    if (lk[i] < 2000) expected.emplace(lp[i], rp[lk[i] - 1]);
  }
  for (JoinRightMode mode : kAllModes) {
    auto result = db_->RunJoin(q, mode);
    ASSERT_TRUE(result.ok());
    std::multiset<std::pair<Value, Value>> got;
    for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
      got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
    }
    EXPECT_TRUE(got == expected) << JoinRightModeName(mode);
  }
}

TEST_F(JoinTest, EarlyLeftModeAgreesWithLate) {
  Tables t = MakeTables(90000, 6000, 11);
  for (Value x : {Value{0}, Value{3000}, Value{6001}}) {
    t.query.left_pred = Predicate::LessThan(x);
    auto expected = NaiveJoin(t, x);
    for (JoinRightMode mode : kAllModes) {
      plan::JoinQuery early = t.query;
      early.left_mode = exec::JoinLeftMode::kEarly;
      auto result = db_->RunJoin(early, mode);
      ASSERT_TRUE(result.ok())
          << JoinRightModeName(mode) << ": " << result.status().ToString();
      std::multiset<std::pair<Value, Value>> got;
      for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
        got.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
      }
      EXPECT_TRUE(got == expected)
          << "early-left " << JoinRightModeName(mode) << " x=" << x;
    }
  }
}

TEST_F(JoinTest, EarlyLeftScansEverythingLateSkips) {
  // With an empty probe predicate, the late outer side still avoids
  // constructing tuples, while the early side constructs none either —
  // but the early side always scans the payload column.
  Tables t = MakeTables(80000, 4000, 13);
  t.query.left_pred = Predicate::LessThan(1);  // ~nothing matches
  plan::JoinQuery late = t.query;
  plan::JoinQuery early = t.query;
  early.left_mode = exec::JoinLeftMode::kEarly;
  auto late_r = db_->RunJoin(late, JoinRightMode::kMaterialized);
  auto early_r = db_->RunJoin(early, JoinRightMode::kMaterialized);
  ASSERT_TRUE(late_r.ok() && early_r.ok());
  EXPECT_EQ(late_r->stats.output_tuples, early_r->stats.output_tuples);
  // Early scans both outer columns fully; late never touches the payload.
  EXPECT_GT(early_r->stats.exec.blocks_fetched,
            late_r->stats.exec.blocks_fetched);
}

// --- Parallel, snapshot-aware joins (two-phase build/probe) -----------------

constexpr int kWorkerCounts[] = {1, 2, 4};
constexpr exec::JoinLeftMode kLeftModes[] = {exec::JoinLeftMode::kLate,
                                             exec::JoinLeftMode::kEarly};

/// One-window morsels so 2/4 workers genuinely partition the probe.
plan::PlanConfig JoinWorkerConfig(int workers) {
  plan::PlanConfig config;
  config.num_workers = workers;
  config.morsel_positions = kChunkPositions;
  return config;
}

TEST_F(JoinTest, ParallelJoinBitIdenticalAcrossWorkers) {
  // ~4 chunk windows on the outer side: enough morsels for 4 workers.
  Tables t = MakeTables(260000, 9000, 21);
  const Value x = 4500;
  t.query.left_pred = Predicate::LessThan(x);
  auto expected = NaiveJoin(t, x);
  for (JoinRightMode mode : kAllModes) {
    for (exec::JoinLeftMode lm : kLeftModes) {
      plan::JoinQuery q = t.query;
      q.left_mode = lm;
      uint64_t serial_checksum = 0;
      uint64_t serial_tuples = 0;
      for (int workers : kWorkerCounts) {
        auto r = db_->RunJoin(q, mode, JoinWorkerConfig(workers));
        ASSERT_TRUE(r.ok()) << JoinRightModeName(mode) << " workers="
                            << workers << ": " << r.status().ToString();
        if (workers == 1) {
          serial_checksum = r->stats.checksum;
          serial_tuples = r->stats.output_tuples;
          EXPECT_EQ(serial_tuples, expected.size()) << JoinRightModeName(mode);
        } else {
          EXPECT_EQ(r->stats.checksum, serial_checksum)
              << JoinRightModeName(mode) << " left="
              << (lm == exec::JoinLeftMode::kLate ? "late" : "early")
              << " workers=" << workers;
          EXPECT_EQ(r->stats.output_tuples, serial_tuples)
              << JoinRightModeName(mode) << " workers=" << workers;
          EXPECT_EQ(r->tuples.num_tuples(), serial_tuples);
        }
      }
    }
  }
}

TEST_F(JoinTest, RadixBuildBitIdenticalToSerial) {
  // Inner side spans several chunk windows, so the radix pipeline runs
  // multiple partition tasks; every radix_bits setting must reproduce the
  // serial (radix_bits=0) result bit for bit at every worker count.
  Tables t = MakeTables(260000, 150000, 41);
  t.query.left_pred = Predicate::LessThan(70000);
  for (JoinRightMode mode : kAllModes) {
    plan::PlanConfig serial_config = JoinWorkerConfig(1);
    serial_config.radix_bits = 0;
    auto serial = db_->RunJoin(t.query, mode, serial_config);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int bits : {-1, 0, 2, 4}) {
      for (int workers : kWorkerCounts) {
        plan::PlanConfig config = JoinWorkerConfig(workers);
        config.radix_bits = bits;
        auto r = db_->RunJoin(t.query, mode, config);
        ASSERT_TRUE(r.ok())
            << JoinRightModeName(mode) << " bits=" << bits
            << " workers=" << workers << ": " << r.status().ToString();
        EXPECT_EQ(r->stats.checksum, serial->stats.checksum)
            << JoinRightModeName(mode) << " bits=" << bits
            << " workers=" << workers;
        EXPECT_EQ(r->stats.output_tuples, serial->stats.output_tuples)
            << JoinRightModeName(mode) << " bits=" << bits
            << " workers=" << workers;
      }
    }
  }
}

TEST_F(JoinTest, PooledSchedulerJoinMatchesSerial) {
  // The shared-scheduler path: the build barrier runs as a phase-one task,
  // probe morsels interleave with a concurrent selection on one pool.
  Tables t = MakeTables(260000, 7000, 23);
  t.query.left_pred = Predicate::LessThan(3500);
  plan::SelectionQuery sel;
  sel.columns.push_back({t.query.left_payload, Predicate::True()});

  std::vector<uint64_t> serial_sums;
  for (JoinRightMode mode : kAllModes) {
    auto r = db_->RunJoin(t.query, mode);
    ASSERT_TRUE(r.ok());
    serial_sums.push_back(r->stats.checksum);
  }

  sched::Scheduler::Options so;
  so.num_workers = 4;
  sched::Scheduler scheduler(so);
  api::Connection conn(db_.get(), &scheduler);
  std::vector<api::PendingResult> pending;
  for (JoinRightMode mode : kAllModes) {
    pending.push_back(conn.Submit(
        plan::PlanTemplate::Join(t.query, mode, JoinWorkerConfig(4))));
    pending.push_back(conn.Submit(plan::PlanTemplate::Selection(
        sel, plan::Strategy::kLmParallel, JoinWorkerConfig(4))));
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    auto r = pending[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (i % 2 == 0) {
      EXPECT_EQ(r->stats.checksum, serial_sums[i / 2])
          << JoinRightModeName(kAllModes[i / 2]);
    }
  }
}

/// Reference row state mirroring a table's inserts/deletes/updates.
struct RefRows {
  std::vector<Value> key;
  std::vector<Value> payload;
  std::vector<bool> deleted;

  void Append(Value k, Value p) {
    key.push_back(k);
    payload.push_back(p);
    deleted.push_back(false);
  }
  void DeleteWhereKeyEq(Value k) {
    for (size_t i = 0; i < key.size(); ++i) {
      if (!deleted[i] && key[i] == k) deleted[i] = true;
    }
  }
  void DeleteWherePayloadEq(Value p) {
    for (size_t i = 0; i < key.size(); ++i) {
      if (!deleted[i] && payload[i] == p) deleted[i] = true;
    }
  }
  /// UPDATE payload WHERE key == k (delete + re-insert, like the engine).
  void UpdatePayloadWhereKeyEq(Value k, Value p) {
    std::vector<Value> hit;
    for (size_t i = 0; i < key.size(); ++i) {
      if (!deleted[i] && key[i] == k) {
        deleted[i] = true;
        hit.push_back(key[i]);
      }
    }
    for (Value kk : hit) Append(kk, p);
  }
};

class JoinWriteTest : public JoinTest {
 protected:
  /// Creates + registers a two-column table (key, payload).
  void MakeWritableTable(const std::string& name,
                         const std::vector<Value>& keys,
                         const std::vector<Value>& payloads) {
    ASSERT_OK(db_->CreateColumn(name + "_key", Encoding::kUncompressed, keys));
    ASSERT_OK(db_->CreateColumn(name + "_payload", Encoding::kUncompressed,
                                payloads));
    ASSERT_OK(db_->RegisterTable(
        name, {{"key", name + "_key"}, {"payload", name + "_payload"}}));
  }

  /// Brute-force join of the reference states: inner keys are unique among
  /// live rows; outer rows with key < x join to the live inner row.
  static std::multiset<std::pair<Value, Value>> RefJoin(const RefRows& outer,
                                                        const RefRows& inner,
                                                        Value x) {
    std::map<Value, Value> right;
    for (size_t i = 0; i < inner.key.size(); ++i) {
      if (!inner.deleted[i]) right[inner.key[i]] = inner.payload[i];
    }
    std::multiset<std::pair<Value, Value>> out;
    for (size_t i = 0; i < outer.key.size(); ++i) {
      if (outer.deleted[i] || outer.key[i] >= x) continue;
      auto it = right.find(outer.key[i]);
      if (it != right.end()) out.emplace(outer.payload[i], it->second);
    }
    return out;
  }
};

TEST_F(JoinWriteTest, JoinUnderWritesMatchesBruteForce) {
  // Outer read store: exactly 3 chunk windows, so inserted tail rows start
  // on a window boundary and a one-window morsel is *pure tail* — the probe
  // path's WsScan leaf runs as its own morsel at 4 workers.
  const size_t n_orders = 3 * kChunkPositions;
  const size_t n_cust = 6000;
  Random rng(31);
  RefRows orders;
  RefRows customer;
  for (size_t i = 0; i < n_cust; ++i) {
    customer.Append(static_cast<Value>(i + 1),
                    static_cast<Value>(rng.Uniform(25)));
  }
  for (size_t i = 0; i < n_orders; ++i) {
    orders.Append(static_cast<Value>(rng.UniformRange(1,
                                                      static_cast<int64_t>(
                                                          n_cust))),
                  static_cast<Value>(rng.Uniform(3000)));
  }
  MakeWritableTable("jw_orders", orders.key, orders.payload);
  MakeWritableTable("jw_customer", customer.key, customer.payload);

  // --- Writes, mirrored in the reference state ---------------------------
  // Inserts on both sides: new orders (some referencing brand-new customer
  // keys), new customers with fresh unique keys.
  {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < 300; ++i) {
      Value k = static_cast<Value>(n_cust + 1 + i);
      Value p = static_cast<Value>(100 + i % 25);
      rows.push_back({k, p});
      customer.Append(k, p);
    }
    ASSERT_OK(db_->Insert("jw_customer", rows));
  }
  {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < 20000; ++i) {
      Value k = static_cast<Value>(rng.UniformRange(1,
                                                    static_cast<int64_t>(
                                                        n_cust + 300)));
      Value p = static_cast<Value>(rng.Uniform(3000));
      rows.push_back({k, p});
      orders.Append(k, p);
    }
    ASSERT_OK(db_->Insert("jw_orders", rows));
  }
  // Deletes: read-store and tail positions, both sides.
  ASSERT_OK(db_->DeleteWhere("jw_orders",
                             {{"payload", Predicate::Equal(7)}}).status());
  orders.DeleteWherePayloadEq(7);
  ASSERT_OK(db_->DeleteWhere("jw_customer",
                             {{"key", Predicate::Equal(17)}}).status());
  customer.DeleteWhereKeyEq(17);
  ASSERT_OK(db_->DeleteWhere(
                    "jw_customer",
                    {{"key", Predicate::Equal(static_cast<Value>(n_cust +
                                                                 100))}})
                .status());
  customer.DeleteWhereKeyEq(static_cast<Value>(n_cust + 100));
  // An UPDATE'd inner row: same key, new payload, now living in the tail.
  ASSERT_OK(db_->UpdateWhere("jw_customer", {{"payload", 777}},
                             {{"key", Predicate::Equal(42)}})
                .status());
  customer.UpdatePayloadWhereKeyEq(42, 777);

  // --- Snapshots + query -------------------------------------------------
  plan::JoinQuery q;
  ASSERT_OK_AND_ASSIGN(q.left_key, db_->GetColumn("jw_orders_key"));
  ASSERT_OK_AND_ASSIGN(q.left_payload, db_->GetColumn("jw_orders_payload"));
  ASSERT_OK_AND_ASSIGN(q.right_key, db_->GetColumn("jw_customer_key"));
  ASSERT_OK_AND_ASSIGN(q.right_payload,
                       db_->GetColumn("jw_customer_payload"));
  ASSERT_OK_AND_ASSIGN(auto orders_snap, db_->SnapshotTable("jw_orders"));
  ASSERT_OK_AND_ASSIGN(q.right_snapshot, db_->SnapshotTable("jw_customer"));

  for (Value x : {static_cast<Value>(n_cust + 301), Value{3000}}) {
    q.left_pred = Predicate::LessThan(x);
    auto expected = RefJoin(orders, customer, x);
    ASSERT_GT(expected.size(), 0u);
    for (JoinRightMode mode : kAllModes) {
      for (exec::JoinLeftMode lm : kLeftModes) {
        q.left_mode = lm;
        uint64_t serial_checksum = 0;
        for (int workers : kWorkerCounts) {
          plan::PlanConfig config = JoinWorkerConfig(workers);
          config.snapshot = orders_snap;
          auto r = db_->RunJoin(q, mode, config);
          ASSERT_TRUE(r.ok())
              << JoinRightModeName(mode) << " workers=" << workers << ": "
              << r.status().ToString();
          std::multiset<std::pair<Value, Value>> got;
          for (size_t i = 0; i < r->tuples.num_tuples(); ++i) {
            got.emplace(r->tuples.value(i, 0), r->tuples.value(i, 1));
          }
          EXPECT_TRUE(got == expected)
              << JoinRightModeName(mode) << " left="
              << (lm == exec::JoinLeftMode::kLate ? "late" : "early")
              << " workers=" << workers << " x=" << x << " got "
              << got.size() << " expected " << expected.size();
          if (workers == 1) {
            serial_checksum = r->stats.checksum;
          } else {
            EXPECT_EQ(r->stats.checksum, serial_checksum)
                << JoinRightModeName(mode) << " workers=" << workers;
          }
        }
      }
    }
  }

  // The snapshot, not the live store, is what the join sees: new writes
  // after capture must not leak in.
  {
    ASSERT_OK(db_->Insert("jw_customer", {{static_cast<Value>(n_cust + 400),
                                           Value{999}}}));
    ASSERT_OK(db_->Insert("jw_orders", {{static_cast<Value>(n_cust + 400),
                                         Value{888}}}));
    q.left_pred = Predicate::LessThan(static_cast<Value>(n_cust + 500));
    q.left_mode = exec::JoinLeftMode::kLate;
    plan::PlanConfig config = JoinWorkerConfig(2);
    config.snapshot = orders_snap;  // captured before the two inserts
    ASSERT_OK_AND_ASSIGN(auto r,
                         db_->RunJoin(q, JoinRightMode::kMaterialized,
                                      config));
    auto expected =
        RefJoin(orders, customer, static_cast<Value>(n_cust + 500));
    EXPECT_EQ(r.stats.output_tuples, expected.size());
  }
}

TEST_F(JoinWriteTest, RadixBuildUnderWritesMatchesSerial) {
  // Radix partitioning must see exactly what the serial build sees: the
  // inner read store, the snapshot's write-store tail, and its delete mask.
  const size_t n_orders = 2 * kChunkPositions;
  const size_t n_cust = 5000;
  Random rng(53);
  RefRows orders;
  RefRows customer;
  for (size_t i = 0; i < n_cust; ++i) {
    customer.Append(static_cast<Value>(i + 1),
                    static_cast<Value>(rng.Uniform(25)));
  }
  for (size_t i = 0; i < n_orders; ++i) {
    orders.Append(static_cast<Value>(
                      rng.UniformRange(1, static_cast<int64_t>(n_cust))),
                  static_cast<Value>(rng.Uniform(3000)));
  }
  MakeWritableTable("jr_orders", orders.key, orders.payload);
  MakeWritableTable("jr_customer", customer.key, customer.payload);

  // Tail inserts on the inner side (some fresh keys) plus deletes hitting
  // both the read store and the tail.
  {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < 400; ++i) {
      Value k = static_cast<Value>(n_cust + 1 + i);
      Value p = static_cast<Value>(500 + i % 11);
      rows.push_back({k, p});
      customer.Append(k, p);
    }
    ASSERT_OK(db_->Insert("jr_customer", rows));
  }
  ASSERT_OK(db_->DeleteWhere("jr_customer",
                             {{"key", Predicate::Equal(23)}}).status());
  customer.DeleteWhereKeyEq(23);
  ASSERT_OK(db_->DeleteWhere(
                    "jr_customer",
                    {{"key", Predicate::Equal(static_cast<Value>(n_cust +
                                                                 50))}})
                .status());
  customer.DeleteWhereKeyEq(static_cast<Value>(n_cust + 50));

  plan::JoinQuery q;
  ASSERT_OK_AND_ASSIGN(q.left_key, db_->GetColumn("jr_orders_key"));
  ASSERT_OK_AND_ASSIGN(q.left_payload, db_->GetColumn("jr_orders_payload"));
  ASSERT_OK_AND_ASSIGN(q.right_key, db_->GetColumn("jr_customer_key"));
  ASSERT_OK_AND_ASSIGN(q.right_payload,
                       db_->GetColumn("jr_customer_payload"));
  ASSERT_OK_AND_ASSIGN(auto orders_snap, db_->SnapshotTable("jr_orders"));
  ASSERT_OK_AND_ASSIGN(q.right_snapshot, db_->SnapshotTable("jr_customer"));
  const Value x = static_cast<Value>(n_cust + 401);
  q.left_pred = Predicate::LessThan(x);
  auto expected = RefJoin(orders, customer, x);
  ASSERT_GT(expected.size(), 0u);

  for (JoinRightMode mode : kAllModes) {
    plan::PlanConfig serial_config = JoinWorkerConfig(1);
    serial_config.snapshot = orders_snap;
    serial_config.radix_bits = 0;
    ASSERT_OK_AND_ASSIGN(auto serial, db_->RunJoin(q, mode, serial_config));
    EXPECT_EQ(serial.stats.output_tuples, expected.size())
        << JoinRightModeName(mode);
    for (int bits : {2, 4}) {
      for (int workers : {2, 4}) {
        plan::PlanConfig config = JoinWorkerConfig(workers);
        config.snapshot = orders_snap;
        config.radix_bits = bits;
        ASSERT_OK_AND_ASSIGN(auto r, db_->RunJoin(q, mode, config));
        EXPECT_EQ(r.stats.checksum, serial.stats.checksum)
            << JoinRightModeName(mode) << " bits=" << bits
            << " workers=" << workers;
        EXPECT_EQ(r.stats.output_tuples, serial.stats.output_tuples)
            << JoinRightModeName(mode) << " bits=" << bits
            << " workers=" << workers;
      }
    }
  }
}

TEST_F(JoinWriteTest, EmptySnapshotsKeepJoinIdentical) {
  // Empty snapshots (tables never written) must build the exact
  // pre-write-path plan.
  Tables t = MakeTables(100000, 4000, 37);
  t.query.left_pred = Predicate::LessThan(2000);
  ASSERT_OK_AND_ASSIGN(auto baseline, db_->RunJoin(t.query,
                                                   JoinRightMode::kMaterialized));
  MakeWritableTable("jw_empty", {1, 2, 3}, {4, 5, 6});
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("jw_empty"));
  // An empty snapshot of an unrelated table attaches harmlessly on the
  // inner side (no state → no column mapping is consulted).
  plan::JoinQuery q = t.query;
  q.right_snapshot = snap;
  ASSERT_OK_AND_ASSIGN(auto with_snap,
                       db_->RunJoin(q, JoinRightMode::kMaterialized));
  EXPECT_EQ(with_snap.stats.checksum, baseline.stats.checksum);
  EXPECT_EQ(with_snap.stats.output_tuples, baseline.stats.output_tuples);
}

TEST_F(JoinTest, InvalidQueriesRejected) {
  plan::JoinQuery q;  // all null
  EXPECT_FALSE(
      plan::BuildJoinPlan(q, JoinRightMode::kMaterialized, {}).ok());

  Tables t = MakeTables(1000, 100, 7);
  plan::JoinQuery bad = t.query;
  bad.left_payload = Load("short", Encoding::kUncompressed, {1, 2, 3});
  EXPECT_FALSE(
      plan::BuildJoinPlan(bad, JoinRightMode::kMaterialized, {}).ok());
}

}  // namespace
}  // namespace cstore
