// Sort / ORDER BY tests: the two-phase SortOp (morsel-local run formation +
// k-way merge) must emit exactly the brute-force ordering — (key, position)
// is a total order, so the result is one deterministic sequence, not a bag —
// at every worker count, with and without LIMIT, over plain, dictionary-
// encoded, and write-carrying (tail + deletes) tables. A streaming consumer
// that drops its cursor mid-merge must cancel the query cleanly.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/connection.h"
#include "db/database.h"
#include "exec/sort.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using testing::TempDir;

class SortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 2048;
    ASSERT_OK_AND_ASSIGN(db_, db::Database::Open(opts));
  }

  /// Registers a two-column table (a, b) backed by the given encodings.
  void MakeTable(const std::string& name, const std::vector<Value>& a,
                 const std::vector<Value>& b, Encoding ea, Encoding eb) {
    ASSERT_OK(db_->CreateColumn(name + ".a", ea, a));
    ASSERT_OK(db_->CreateColumn(name + ".b", eb, b));
    ASSERT_OK(db_->RegisterTable(name,
                                 {{"a", name + ".a"}, {"b", name + ".b"}}));
  }

  /// Brute-force reference: rows of `cols` (parallel vectors) surviving
  /// `keep`, sorted by (cols[key_col], original position), optionally
  /// truncated to `limit`. Returned as rows in output order.
  static std::vector<std::vector<Value>> Reference(
      const std::vector<std::vector<Value>>& cols, size_t key_col, bool desc,
      uint64_t limit, const std::vector<bool>* keep = nullptr) {
    std::vector<size_t> order;
    for (size_t i = 0; i < cols[0].size(); ++i) {
      if (keep == nullptr || (*keep)[i]) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      Value kx = cols[key_col][x];
      Value ky = cols[key_col][y];
      if (kx != ky) return desc ? kx > ky : kx < ky;
      return x < y;  // position breaks ties — the operator's total order
    });
    if (limit > 0 && order.size() > limit) order.resize(limit);
    std::vector<std::vector<Value>> rows;
    for (size_t i : order) {
      std::vector<Value> row;
      for (const auto& c : cols) row.push_back(c[i]);
      rows.push_back(std::move(row));
    }
    return rows;
  }

  static std::vector<std::vector<Value>> Rows(const api::QueryResult& r) {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < r.tuples.num_tuples(); ++i) {
      std::vector<Value> row;
      for (uint32_t c = 0; c < r.tuples.width(); ++c) {
        row.push_back(r.tuples.value(i, c));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

TEST(SortRowLessTest, TotalOrderBreaksTiesByPosition) {
  EXPECT_TRUE(exec::SortRowLess(1, 9, 2, 0, /*desc=*/false));
  EXPECT_TRUE(exec::SortRowLess(2, 9, 1, 0, /*desc=*/true));
  // Equal keys: position decides, in both directions.
  EXPECT_TRUE(exec::SortRowLess(5, 3, 5, 7, /*desc=*/false));
  EXPECT_TRUE(exec::SortRowLess(5, 3, 5, 7, /*desc=*/true));
  EXPECT_FALSE(exec::SortRowLess(5, 7, 5, 3, /*desc=*/false));
}

TEST(SortParserTest, OrderByLimitForms) {
  ASSERT_OK_AND_ASSIGN(sql::ParsedQuery q,
                       sql::Parse("SELECT a FROM t ORDER BY b"));
  ASSERT_TRUE(q.order_by.has_value());
  EXPECT_EQ(*q.order_by, "b");
  EXPECT_FALSE(q.order_desc);
  EXPECT_EQ(q.limit, 0u);

  ASSERT_OK_AND_ASSIGN(
      q, sql::Parse("SELECT a FROM t ORDER BY a DESC LIMIT 10"));
  EXPECT_TRUE(q.order_desc);
  EXPECT_EQ(q.limit, 10u);

  ASSERT_OK_AND_ASSIGN(q, sql::Parse("SELECT a FROM t ORDER BY a ASC"));
  EXPECT_FALSE(q.order_desc);

  // LIMIT without ORDER BY would be nondeterministic under parallel scans.
  EXPECT_FALSE(sql::Parse("SELECT a FROM t LIMIT 5").ok());
  // LIMIT must be a positive integer.
  EXPECT_FALSE(sql::Parse("SELECT a FROM t ORDER BY a LIMIT 0").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM t ORDER BY a LIMIT -3").ok());
}

TEST_F(SortTest, OrderByMatchesBruteForce) {
  const size_t n = 50000;
  Random rng(101);
  std::vector<Value> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(rng.Uniform(1000000)));
    // Narrow domain → plenty of duplicate keys, exercising the positional
    // tie break.
    b.push_back(static_cast<Value>(rng.Uniform(200)));
  }
  MakeTable("s1", a, b, Encoding::kUncompressed, Encoding::kUncompressed);
  api::Connection conn(db_.get());

  for (bool desc : {false, true}) {
    std::string sql = std::string("SELECT a, b FROM s1 ORDER BY b") +
                      (desc ? " DESC" : "");
    ASSERT_OK_AND_ASSIGN(api::QueryResult r, conn.Query(sql));
    EXPECT_EQ(Rows(r), Reference({a, b}, 1, desc, 0)) << sql;
  }
  // With a WHERE clause in front of the sort.
  {
    std::vector<bool> keep(n);
    std::vector<std::vector<Value>> filtered_cols(2);
    for (size_t i = 0; i < n; ++i) {
      if (a[i] < 500000) {
        filtered_cols[0].push_back(a[i]);
        filtered_cols[1].push_back(b[i]);
      }
    }
    ASSERT_OK_AND_ASSIGN(
        api::QueryResult r,
        conn.Query("SELECT a, b FROM s1 WHERE a < 500000 ORDER BY b"));
    EXPECT_EQ(Rows(r), Reference(filtered_cols, 1, false, 0));
  }
}

TEST_F(SortTest, TopNLimitIncludingTies) {
  const size_t n = 30000;
  Random rng(103);
  std::vector<Value> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(i));
    b.push_back(static_cast<Value>(rng.Uniform(50)));  // heavy ties
  }
  MakeTable("s2", a, b, Encoding::kUncompressed, Encoding::kUncompressed);
  api::Connection conn(db_.get());
  for (uint64_t limit : {uint64_t{1}, uint64_t{7}, uint64_t{100},
                         uint64_t{n + 5}}) {
    for (bool desc : {false, true}) {
      std::string sql = "SELECT a, b FROM s2 ORDER BY b" +
                        std::string(desc ? " DESC" : "") + " LIMIT " +
                        std::to_string(limit);
      ASSERT_OK_AND_ASSIGN(api::QueryResult r, conn.Query(sql));
      // The LIMIT prefix of the full deterministic ordering — ties resolve
      // by position, so even a cut through a tie group is exact.
      EXPECT_EQ(Rows(r), Reference({a, b}, 1, desc, limit)) << sql;
    }
  }
}

TEST_F(SortTest, OrderByDictColumnAndSortKeyNotInSelectList) {
  const size_t n = 20000;
  std::vector<Value> a;
  Random rng(107);
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(rng.Uniform(100000)));
  }
  // Dict-encoded sort key: small distinct domain, dense ids.
  std::vector<Value> b = testing::RunnyValues(n, 30, 4.0, 107);
  MakeTable("s3", a, b, Encoding::kUncompressed, Encoding::kDict);
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                       conn.Query("SELECT a, b FROM s3 ORDER BY b DESC"));
  EXPECT_EQ(Rows(r), Reference({a, b}, 1, true, 0));

  // ORDER BY a column that is not projected: the sort key joins the scan,
  // the output keeps only the select list.
  ASSERT_OK_AND_ASSIGN(r, conn.Query("SELECT a FROM s3 ORDER BY b LIMIT 9"));
  auto expected = Reference({a, b}, 1, false, 9);
  ASSERT_EQ(r.tuples.num_tuples(), expected.size());
  ASSERT_EQ(r.tuples.width(), 1u);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.tuples.value(i, 0), expected[i][0]) << "row " << i;
  }
}

TEST_F(SortTest, BitIdenticalAcrossWorkerCounts) {
  // Several chunk windows so 2/4 workers genuinely form separate runs.
  const size_t n = 4 * kChunkPositions;
  Random rng(109);
  std::vector<Value> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(rng.Uniform(1 << 20)));
    b.push_back(static_cast<Value>(rng.Uniform(512)));
  }
  MakeTable("s4", a, b, Encoding::kUncompressed, Encoding::kUncompressed);

  for (uint64_t limit : {uint64_t{0}, uint64_t{1000}}) {
    std::vector<std::vector<Value>> serial_rows;
    uint64_t serial_checksum = 0;
    for (int workers : {1, 2, 4}) {
      sched::Scheduler::Options so;
      so.num_workers = workers;
      sched::Scheduler scheduler(so);
      api::Connection conn(db_.get(), &scheduler);
      std::string sql = "SELECT a, b FROM s4 ORDER BY b";
      if (limit > 0) sql += " LIMIT " + std::to_string(limit);
      ASSERT_OK_AND_ASSIGN(api::QueryResult r, conn.Query(sql));
      if (workers == 1) {
        serial_rows = Rows(r);
        serial_checksum = r.stats.checksum;
        EXPECT_EQ(serial_rows.size(), limit > 0 ? limit : n);
      } else {
        // Same rows in the same order, and the same digest: the merge of
        // per-worker runs reproduces the serial sequence exactly.
        EXPECT_EQ(Rows(r), serial_rows)
            << "workers=" << workers << " limit=" << limit;
        EXPECT_EQ(r.stats.checksum, serial_checksum) << "workers=" << workers;
      }
    }
  }
}

TEST_F(SortTest, OrderByUnderWritesSeesTailAndDeletes) {
  const size_t n = 10000;
  Random rng(113);
  std::vector<Value> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(i));
    b.push_back(static_cast<Value>(rng.Uniform(300)));
  }
  MakeTable("s5", a, b, Encoding::kUncompressed, Encoding::kUncompressed);
  // Tail inserts and deletes in both stores.
  std::vector<std::vector<Value>> inserts;
  for (size_t i = 0; i < 500; ++i) {
    inserts.push_back({static_cast<Value>(n + i),
                       static_cast<Value>(rng.Uniform(300))});
  }
  ASSERT_OK(db_->Insert("s5", inserts));
  for (const auto& row : inserts) {
    a.push_back(row[0]);
    b.push_back(row[1]);
  }
  ASSERT_OK(
      db_->DeleteWhere("s5", {{"b", codec::Predicate::Equal(7)}}).status());
  std::vector<bool> keep(a.size());
  for (size_t i = 0; i < a.size(); ++i) keep[i] = b[i] != 7;

  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                       conn.Query("SELECT a, b FROM s5 ORDER BY b LIMIT 50"));
  EXPECT_EQ(Rows(r), Reference({a, b}, 1, false, 50, &keep));
}

TEST_F(SortTest, StreamingCursorDropMidMergeCancels) {
  const size_t n = 4 * kChunkPositions;
  Random rng(127);
  std::vector<Value> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(i));
    b.push_back(static_cast<Value>(rng.Uniform(1 << 16)));
  }
  MakeTable("s6", a, b, Encoding::kUncompressed, Encoding::kUncompressed);
  sched::Scheduler::Options so;
  so.num_workers = 2;
  sched::Scheduler scheduler(so);
  api::Connection::Settings settings;
  settings.stream_queue_chunks = 1;  // tiny queue: the merge must block
  api::Connection conn(db_.get(), &scheduler, settings);
  {
    ASSERT_OK_AND_ASSIGN(api::RowCursor cursor,
                         conn.Stream("SELECT a, b FROM s6 ORDER BY b"));
    exec::TupleChunk chunk;
    // Take one chunk of the merged stream, then drop the cursor: the
    // destructor cancels the query and must not deadlock against the
    // finalize merge blocked on the full queue.
    ASSERT_OK_AND_ASSIGN(bool got, cursor.Next(&chunk));
    ASSERT_TRUE(got);
    ASSERT_GT(chunk.num_tuples(), 0u);
    // First chunk of the merge is the global minimum prefix.
    Value min_b = *std::min_element(b.begin(), b.end());
    EXPECT_EQ(chunk.value(0, 1), min_b);
  }
  // The pool is healthy after the cancellation: a fresh query completes.
  ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                       conn.Query("SELECT a, b FROM s6 ORDER BY b LIMIT 3"));
  EXPECT_EQ(r.tuples.num_tuples(), 3u);
}

TEST_F(SortTest, OrderByOnAggregateRejected) {
  MakeTable("s7", {1, 2, 3}, {4, 5, 6}, Encoding::kUncompressed,
            Encoding::kUncompressed);
  api::Connection conn(db_.get());
  auto r = conn.Query("SELECT a, SUM(b) FROM s7 GROUP BY a ORDER BY a");
  EXPECT_FALSE(r.ok());
  auto r2 = conn.Query("SELECT a FROM s7 ORDER BY nosuch");
  EXPECT_FALSE(r2.ok());
}

TEST_F(SortTest, ExplainAnalyzeReportsMergePhase) {
  const size_t n = 2 * kChunkPositions;
  std::vector<Value> a, b;
  Random rng(131);
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<Value>(i));
    b.push_back(static_cast<Value>(rng.Uniform(1000)));
  }
  MakeTable("s8", a, b, Encoding::kUncompressed, Encoding::kUncompressed);
  sched::Scheduler::Options so;
  so.num_workers = 2;
  sched::Scheduler scheduler(so);
  api::Connection conn(db_.get(), &scheduler);
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult r,
      conn.Query("EXPLAIN ANALYZE SELECT a FROM s8 ORDER BY b LIMIT 10"));
  // The model section ranks strategies with the sort term; the actuals
  // section reports the measured merge phase.
  EXPECT_NE(r.explain_text.find("sort:"), std::string::npos)
      << r.explain_text;
  EXPECT_NE(r.explain_text.find("phases:"), std::string::npos)
      << r.explain_text;
}

}  // namespace
}  // namespace cstore
