// Cross-strategy equivalence: the paper's central implicit invariant is that
// all four materialization strategies compute the same result. These tests
// verify it on randomized data across encodings and selectivities, plus the
// aggregation and NotSupported paths.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using plan::Strategy;
using testing::TempDir;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 2048;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  /// Reference evaluation of a 2-column selection.
  struct Expected {
    uint64_t count = 0;
    std::multiset<std::pair<Value, Value>> rows;
  };
  static Expected NaiveSelect(const std::vector<Value>& a,
                              const std::vector<Value>& b,
                              const Predicate& pa, const Predicate& pb) {
    Expected e;
    for (size_t i = 0; i < a.size(); ++i) {
      if (pa.Eval(a[i]) && pb.Eval(b[i])) {
        e.rows.emplace(a[i], b[i]);
        ++e.count;
      }
    }
    return e;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

struct StrategyCase {
  Encoding enc_a;
  Encoding enc_b;
  double sel_a;  // approximate selectivity of predicate on column a
  double sel_b;
};

class StrategyEquivalenceTest
    : public PlanTest,
      public ::testing::WithParamInterface<StrategyCase> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgree) {
  const StrategyCase& tc = GetParam();
  const size_t n = 200000;
  const int domain = 1000;
  // Column a: sorted with runs (like SHIPDATE in a sorted projection);
  // column b: unsorted low-cardinality (like LINENUM).
  std::vector<Value> a = testing::SortedRunnyValues(n, domain, 8.0, 101);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 103);

  const codec::ColumnReader* ra = Load("a", tc.enc_a, a);
  const codec::ColumnReader* rb = Load("b", tc.enc_b, b);

  Predicate pa = Predicate::LessThan(static_cast<Value>(domain * tc.sel_a));
  Predicate pb = Predicate::LessThan(static_cast<Value>(1 + 7 * tc.sel_b));

  Expected expected = NaiveSelect(a, b, pa, pb);

  plan::SelectionQuery q;
  q.columns.push_back({ra, pa});
  q.columns.push_back({rb, pb});

  uint64_t reference_checksum = 0;
  bool have_reference = false;
  // Exercise both the scanning DS1 path and the sorted-index fast path
  // (column a is sorted, so LM plans may derive its positions by index).
  for (bool use_index : {false, true}) {
    plan::PlanConfig config;
    config.use_sorted_index = use_index;
    for (Strategy s : plan::kAllStrategies) {
      auto result = db_->RunSelection(q, s, config);
      if (!result.ok()) {
        // LM-pipelined legitimately refuses bit-vector position filtering
        // (unless the sorted index answers the predicate without values).
        EXPECT_TRUE(s == Strategy::kLmPipelined &&
                    tc.enc_b == Encoding::kBitVector &&
                    result.status().IsNotSupported())
            << StrategyName(s) << ": " << result.status().ToString();
        continue;
      }
      EXPECT_EQ(result->stats.output_tuples, expected.count)
          << StrategyName(s) << " index=" << use_index;
      // Verify actual row content (as a bag).
      std::multiset<std::pair<Value, Value>> rows;
      for (size_t i = 0; i < result->tuples.num_tuples(); ++i) {
        rows.emplace(result->tuples.value(i, 0), result->tuples.value(i, 1));
      }
      EXPECT_TRUE(rows == expected.rows)
          << StrategyName(s) << " rows differ, index=" << use_index;
      if (!have_reference) {
        reference_checksum = result->stats.checksum;
        have_reference = true;
      } else {
        EXPECT_EQ(result->stats.checksum, reference_checksum)
            << StrategyName(s) << " index=" << use_index;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyEquivalenceTest,
    ::testing::Values(
        // Uncompressed × uncompressed at low/mid/high selectivity.
        StrategyCase{Encoding::kUncompressed, Encoding::kUncompressed, 0.01,
                     0.96},
        StrategyCase{Encoding::kUncompressed, Encoding::kUncompressed, 0.5,
                     0.5},
        StrategyCase{Encoding::kUncompressed, Encoding::kUncompressed, 1.0,
                     1.0},
        // RLE combinations (the paper's Figure 11(b) layout).
        StrategyCase{Encoding::kRle, Encoding::kRle, 0.1, 0.96},
        StrategyCase{Encoding::kRle, Encoding::kUncompressed, 0.7, 0.3},
        StrategyCase{Encoding::kRle, Encoding::kRle, 0.0, 0.5},
        // Bit-vector second column (Figure 11(c)): LM-pipelined must refuse.
        StrategyCase{Encoding::kRle, Encoding::kBitVector, 0.3, 0.96},
        StrategyCase{Encoding::kUncompressed, Encoding::kBitVector, 0.9,
                     0.2},
        // Bit-vector first column is fine for every strategy.
        StrategyCase{Encoding::kBitVector, Encoding::kUncompressed, 0.5,
                     0.5},
        // Dictionary encoding supports every strategy, including
        // LM-pipelined position filtering.
        StrategyCase{Encoding::kDict, Encoding::kDict, 0.3, 0.96},
        StrategyCase{Encoding::kRle, Encoding::kDict, 0.7, 0.5}));

TEST_F(PlanTest, ThreeColumnSelection) {
  const size_t n = 120000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 100, 4.0, 1);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 2);
  std::vector<Value> c = testing::RunnyValues(n, 50, 1.0, 3);
  const codec::ColumnReader* ra = Load("a3", Encoding::kRle, a);
  const codec::ColumnReader* rb = Load("b3", Encoding::kUncompressed, b);
  const codec::ColumnReader* rc = Load("c3", Encoding::kUncompressed, c);

  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(60)});
  q.columns.push_back({rb, Predicate::LessThan(6)});
  q.columns.push_back({rc, Predicate::GreaterEqual(10)});

  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 60 && b[i] < 6 && c[i] >= 10) ++expected;
  }

  uint64_t checksum = 0;
  bool first = true;
  for (Strategy s : plan::kAllStrategies) {
    auto result = db_->RunSelection(q, s);
    ASSERT_TRUE(result.ok()) << StrategyName(s);
    EXPECT_EQ(result->stats.output_tuples, expected) << StrategyName(s);
    if (first) {
      checksum = result->stats.checksum;
      first = false;
    } else {
      EXPECT_EQ(result->stats.checksum, checksum) << StrategyName(s);
    }
  }
}

TEST_F(PlanTest, SingleColumnSelection) {
  std::vector<Value> a = testing::RunnyValues(50000, 100, 1.0, 9);
  const codec::ColumnReader* ra = Load("s1", Encoding::kUncompressed, a);
  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(30)});
  uint64_t expected = testing::NaiveMatches(a, Predicate::LessThan(30)).size();
  for (Strategy s : plan::kAllStrategies) {
    auto result = db_->RunSelection(q, s);
    ASSERT_TRUE(result.ok()) << StrategyName(s);
    EXPECT_EQ(result->stats.output_tuples, expected) << StrategyName(s);
  }
}

TEST_F(PlanTest, EmptyResult) {
  std::vector<Value> a = testing::RunnyValues(30000, 10, 1.0, 4);
  std::vector<Value> b = testing::RunnyValues(30000, 10, 1.0, 5);
  const codec::ColumnReader* ra = Load("e1", Encoding::kUncompressed, a);
  const codec::ColumnReader* rb = Load("e2", Encoding::kUncompressed, b);
  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(-1)});
  q.columns.push_back({rb, Predicate::True()});
  for (Strategy s : plan::kAllStrategies) {
    auto result = db_->RunSelection(q, s);
    ASSERT_TRUE(result.ok()) << StrategyName(s);
    EXPECT_EQ(result->stats.output_tuples, 0u) << StrategyName(s);
  }
}

TEST_F(PlanTest, AggregationStrategiesAgree) {
  const size_t n = 150000;
  std::vector<Value> g = testing::SortedRunnyValues(n, 200, 16.0, 21);
  std::vector<Value> v = testing::RunnyValues(n, 7, 2.0, 22);
  const codec::ColumnReader* rg = Load("g", Encoding::kRle, g);
  const codec::ColumnReader* rv = Load("v", Encoding::kRle, v);

  plan::AggQuery q;
  q.selection.columns.push_back({rg, Predicate::LessThan(120)});
  q.selection.columns.push_back({rv, Predicate::LessThan(6)});
  q.group_index = 0;
  q.agg_index = 1;
  q.func = exec::AggFunc::kSum;

  // Reference.
  std::map<Value, int64_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (g[i] < 120 && v[i] < 6) expected[g[i]] += v[i];
  }

  for (Strategy s : plan::kAllStrategies) {
    auto result = db_->RunAgg(q, s);
    ASSERT_TRUE(result.ok()) << StrategyName(s) << ": "
                             << result.status().ToString();
    ASSERT_EQ(result->tuples.num_tuples(), expected.size())
        << StrategyName(s);
    size_t i = 0;
    for (const auto& [grp, sum] : expected) {
      EXPECT_EQ(result->tuples.value(i, 0), grp) << StrategyName(s);
      EXPECT_EQ(result->tuples.value(i, 1), sum) << StrategyName(s);
      ++i;
    }
  }
}

TEST_F(PlanTest, AggregationFunctions) {
  const size_t n = 60000;
  std::vector<Value> g = testing::RunnyValues(n, 10, 4.0, 31);
  std::vector<Value> v = testing::RunnyValues(n, 1000, 1.0, 32);
  const codec::ColumnReader* rg = Load("gf", Encoding::kUncompressed, g);
  const codec::ColumnReader* rv = Load("vf", Encoding::kUncompressed, v);

  for (exec::AggFunc func : {exec::AggFunc::kSum, exec::AggFunc::kCount,
                             exec::AggFunc::kMin, exec::AggFunc::kMax}) {
    plan::AggQuery q;
    q.selection.columns.push_back({rg, Predicate::True()});
    q.selection.columns.push_back({rv, Predicate::LessThan(900)});
    q.func = func;

    std::map<Value, int64_t> expected;
    std::map<Value, int64_t> counts;
    for (size_t i = 0; i < n; ++i) {
      if (v[i] >= 900) continue;
      auto [it, fresh] = expected.emplace(g[i], v[i]);
      ++counts[g[i]];
      if (!fresh) {
        switch (func) {
          case exec::AggFunc::kSum:
            it->second += v[i];
            break;
          case exec::AggFunc::kMin:
            it->second = std::min(it->second, v[i]);
            break;
          case exec::AggFunc::kMax:
            it->second = std::max(it->second, v[i]);
            break;
          case exec::AggFunc::kCount:
          case exec::AggFunc::kAvg:  // covered by AggregateTest suites
            break;
        }
      }
    }

    auto em = db_->RunAgg(q, Strategy::kEmParallel);
    auto lm = db_->RunAgg(q, Strategy::kLmParallel);
    ASSERT_TRUE(em.ok() && lm.ok());
    ASSERT_EQ(em->tuples.num_tuples(), expected.size());
    ASSERT_EQ(lm->tuples.num_tuples(), expected.size());
    size_t i = 0;
    for (const auto& [grp, agg] : expected) {
      int64_t want =
          (func == exec::AggFunc::kCount) ? counts[grp] : agg;
      EXPECT_EQ(em->tuples.value(i, 0), grp);
      EXPECT_EQ(em->tuples.value(i, 1), want);
      EXPECT_EQ(lm->tuples.value(i, 0), grp);
      EXPECT_EQ(lm->tuples.value(i, 1), want);
      ++i;
    }
  }
}

TEST_F(PlanTest, MulticolumnOffStillCorrect) {
  // Disabling the multi-column optimization must not change results, only
  // force re-fetches.
  const size_t n = 100000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 50, 8.0, 41);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 42);
  const codec::ColumnReader* ra = Load("m1", Encoding::kRle, a);
  const codec::ColumnReader* rb = Load("m2", Encoding::kUncompressed, b);

  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(25)});
  q.columns.push_back({rb, Predicate::LessThan(6)});

  plan::PlanConfig with_mc;
  with_mc.use_multicolumn = true;
  plan::PlanConfig without_mc;
  without_mc.use_multicolumn = false;

  for (Strategy s : {Strategy::kLmParallel, Strategy::kLmPipelined}) {
    auto r1 = db_->RunSelection(q, s, with_mc);
    auto r2 = db_->RunSelection(q, s, without_mc);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(r1->stats.checksum, r2->stats.checksum) << StrategyName(s);
    EXPECT_EQ(r1->stats.output_tuples, r2->stats.output_tuples);
    // Without minis, Merge must re-fetch blocks: strictly more fetches.
    EXPECT_GT(r2->stats.exec.blocks_fetched, r1->stats.exec.blocks_fetched)
        << StrategyName(s);
  }
}

TEST_F(PlanTest, PipelinedSkipsBlocksAtLowSelectivity) {
  const size_t n = 500000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 10000, 4.0, 51);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 52);
  const codec::ColumnReader* ra = Load("p1", Encoding::kRle, a);
  const codec::ColumnReader* rb = Load("p2", Encoding::kUncompressed, b);

  plan::SelectionQuery q;
  // ~0.5% selectivity on the sorted column: matching positions cluster at
  // the front, so nearly all of column b's blocks contain no candidates.
  q.columns.push_back({ra, Predicate::LessThan(50)});
  q.columns.push_back({rb, Predicate::LessThan(6)});

  auto result = db_->RunSelection(q, Strategy::kLmPipelined);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.exec.blocks_skipped, 0u);
  // The pipelined plan must touch far fewer of b's blocks than a full scan
  // (b has n/8128 ≈ 61 blocks).
  EXPECT_LT(result->stats.exec.blocks_fetched, 30u);
}

TEST_F(PlanTest, SortedIndexProducesSameResultsWithFewerFetches) {
  // A globally sorted first column: LM plans can derive its positions from
  // the index without reading any of its blocks (Section 2.1.1).
  const size_t n = 300000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 5000, 4.0, 81);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 82);
  const codec::ColumnReader* ra = Load("si_a", Encoding::kUncompressed, a);
  const codec::ColumnReader* rb = Load("si_b", Encoding::kUncompressed, b);
  ASSERT_TRUE(ra->meta().sorted);

  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(500)});  // clustered 10%
  q.columns.push_back({rb, Predicate::LessThan(6)});

  plan::PlanConfig with_index;
  with_index.use_sorted_index = true;
  plan::PlanConfig no_index;
  no_index.use_sorted_index = false;

  for (Strategy s : {Strategy::kLmParallel, Strategy::kLmPipelined}) {
    auto r1 = db_->RunSelection(q, s, with_index);
    auto r2 = db_->RunSelection(q, s, no_index);
    ASSERT_TRUE(r1.ok() && r2.ok()) << StrategyName(s);
    EXPECT_EQ(r1->stats.checksum, r2->stats.checksum) << StrategyName(s);
    EXPECT_EQ(r1->stats.output_tuples, r2->stats.output_tuples);
    // The index plan never scans column a for positions.
    EXPECT_LT(r1->stats.exec.blocks_fetched, r2->stats.exec.blocks_fetched)
        << StrategyName(s);
  }
}

TEST_F(PlanTest, SortedIndexAllowsLmPipelinedOverBitVector) {
  // Index lookups never touch values, so even a bit-vector column can be
  // position-filtered when it is sorted.
  const size_t n = 100000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 50, 16.0, 83);
  std::vector<Value> b = testing::SortedRunnyValues(n, 7, 64.0, 84);
  const codec::ColumnReader* ra = Load("sb_a", Encoding::kUncompressed, a);
  const codec::ColumnReader* rb = Load("sb_b", Encoding::kBitVector, b);
  ASSERT_TRUE(rb->meta().sorted);

  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(25)});
  q.columns.push_back({rb, Predicate::LessThan(4)});

  auto result = db_->RunSelection(q, Strategy::kLmPipelined);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 25 && b[i] < 4) ++expected;
  }
  EXPECT_EQ(result->stats.output_tuples, expected);
}

TEST_F(PlanTest, LmPipelinedRejectsBitVectorSecondColumn) {
  std::vector<Value> a = testing::SortedRunnyValues(30000, 10, 4.0, 61);
  std::vector<Value> b = testing::RunnyValues(30000, 7, 1.0, 62);
  const codec::ColumnReader* ra = Load("bv1", Encoding::kUncompressed, a);
  const codec::ColumnReader* rb = Load("bv2", Encoding::kBitVector, b);
  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(5)});
  q.columns.push_back({rb, Predicate::LessThan(6)});
  auto result = db_->RunSelection(q, Strategy::kLmPipelined);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST_F(PlanTest, InvalidQueriesRejected) {
  plan::SelectionQuery empty;
  EXPECT_FALSE(plan::BuildSelectionPlan(empty, Strategy::kEmParallel, {})
                   .ok());

  std::vector<Value> a = testing::RunnyValues(1000, 10, 1.0, 71);
  std::vector<Value> b = testing::RunnyValues(2000, 10, 1.0, 72);
  const codec::ColumnReader* ra = Load("iv1", Encoding::kUncompressed, a);
  const codec::ColumnReader* rb = Load("iv2", Encoding::kUncompressed, b);
  plan::SelectionQuery mismatched;
  mismatched.columns.push_back({ra, Predicate::True()});
  mismatched.columns.push_back({rb, Predicate::True()});
  EXPECT_FALSE(
      plan::BuildSelectionPlan(mismatched, Strategy::kEmParallel, {}).ok());

  plan::AggQuery bad_agg;
  bad_agg.selection.columns.push_back({ra, Predicate::True()});
  bad_agg.group_index = 0;
  bad_agg.agg_index = 5;  // out of range
  EXPECT_FALSE(plan::BuildAggPlan(bad_agg, Strategy::kEmParallel, {}).ok());
}

}  // namespace
}  // namespace cstore
