// Operator-level tests: DS1/DS1-pipelined/DS2/DS4/SPC/AND/Merge behaviour,
// mini-column pass-through, and the executor's statistics.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/and_op.h"
#include "exec/ds_scan.h"
#include "exec/gather.h"
#include "exec/merge_op.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using exec::ExecStats;
using exec::MultiColumnChunk;
using exec::TupleChunk;
using testing::TempDir;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 1024;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  /// Drains a MultiColumnOp, returning all valid positions.
  std::vector<Position> DrainPositions(exec::MultiColumnOp* op) {
    std::vector<Position> out;
    MultiColumnChunk chunk;
    while (true) {
      auto has = op->Next(&chunk);
      EXPECT_TRUE(has.ok()) << has.status().ToString();
      if (!*has) break;
      chunk.desc.ForEachPosition([&](Position p) { out.push_back(p); });
    }
    return out;
  }

  /// Drains a TupleOp, returning (position, row) pairs.
  std::vector<std::pair<Position, std::vector<Value>>> DrainTuples(
      exec::TupleOp* op) {
    std::vector<std::pair<Position, std::vector<Value>>> out;
    TupleChunk chunk;
    while (true) {
      auto has = op->Next(&chunk);
      EXPECT_TRUE(has.ok()) << has.status().ToString();
      if (!*has) break;
      for (size_t i = 0; i < chunk.num_tuples(); ++i) {
        std::vector<Value> row(chunk.tuple(i),
                               chunk.tuple(i) + chunk.width());
        out.emplace_back(chunk.position(i), std::move(row));
      }
    }
    return out;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

TEST_F(ExecTest, DS1ScanEmitsMatchingPositions) {
  std::vector<Value> vals = testing::RunnyValues(150000, 100, 1.0, 3);
  const auto* col = Load("c", Encoding::kUncompressed, vals);
  ExecStats stats;
  exec::DS1Scan scan(col, 0, Predicate::LessThan(40), true, &stats);
  std::vector<Position> got = DrainPositions(&scan);
  EXPECT_EQ(got, testing::NaiveMatches(vals, Predicate::LessThan(40)));
  // Every block is fetched at least once; blocks straddling window
  // boundaries are fetched (as pool hits) by both windows.
  EXPECT_GE(stats.blocks_fetched, col->num_blocks());
  EXPECT_GE(stats.predicate_evals, vals.size());
}

TEST_F(ExecTest, DS1ScanAttachesMiniColumns) {
  std::vector<Value> vals = testing::RunnyValues(70000, 10, 4.0, 5);
  const auto* col = Load("c", Encoding::kRle, vals);
  ExecStats stats;
  exec::DS1Scan scan(col, 7, Predicate::True(), true, &stats);
  MultiColumnChunk chunk;
  ASSERT_OK_AND_ASSIGN(bool has, scan.Next(&chunk));
  ASSERT_TRUE(has);
  ASSERT_EQ(chunk.minis.size(), 1u);
  EXPECT_EQ(chunk.minis[0].column(), 7u);
  EXPECT_NE(chunk.FindMini(7), nullptr);
  EXPECT_EQ(chunk.FindMini(3), nullptr);
  // The mini-column serves values without touching the reader.
  std::vector<Value> gathered;
  chunk.FindMini(7)->GatherValues(chunk.desc, &gathered);
  EXPECT_EQ(gathered.size(), chunk.desc.Cardinality());
}

TEST_F(ExecTest, DS1ScanWithoutMiniAttachesNothing) {
  std::vector<Value> vals = testing::RunnyValues(20000, 10, 1.0, 7);
  const auto* col = Load("c", Encoding::kUncompressed, vals);
  ExecStats stats;
  exec::DS1Scan scan(col, 0, Predicate::True(), false, &stats);
  MultiColumnChunk chunk;
  ASSERT_OK_AND_ASSIGN(bool has, scan.Next(&chunk));
  ASSERT_TRUE(has);
  EXPECT_TRUE(chunk.minis.empty());
}

TEST_F(ExecTest, DS1PipelinedRefinesAndSkips) {
  const size_t n = 300000;
  // Column a: sorted → highly selective prefix predicate clusters matches.
  std::vector<Value> a = testing::SortedRunnyValues(n, 10000, 2.0, 11);
  std::vector<Value> b = testing::RunnyValues(n, 100, 1.0, 13);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  const auto* cb = Load("b", Encoding::kUncompressed, b);

  ExecStats stats;
  exec::DS1Scan first(ca, 0, Predicate::LessThan(100), true, &stats);
  exec::DS1PipelinedScan second(&first, cb, 1, Predicate::LessThan(50), true,
                                &stats);
  std::vector<Position> got = DrainPositions(&second);

  std::vector<Position> expected;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 100 && b[i] < 50) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(stats.blocks_skipped, 0u);
}

TEST_F(ExecTest, DS2ScanProducesPosValueTuples) {
  std::vector<Value> vals = testing::RunnyValues(60000, 50, 1.0, 17);
  const auto* col = Load("c", Encoding::kUncompressed, vals);
  ExecStats stats;
  exec::DS2Scan scan(col, Predicate::GreaterEqual(25), &stats);
  auto got = DrainTuples(&scan);
  auto expected = testing::NaiveMatches(vals, Predicate::GreaterEqual(25));
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, expected[i]);
    EXPECT_EQ(got[i].second[0], vals[expected[i]]);
  }
  EXPECT_EQ(stats.tuples_constructed, got.size());
}

TEST_F(ExecTest, DS4ExtendsTuplesAndSkipsBlocks) {
  const size_t n = 200000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 1000, 2.0, 19);
  std::vector<Value> b = testing::RunnyValues(n, 10, 1.0, 23);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  const auto* cb = Load("b", Encoding::kUncompressed, b);

  ExecStats stats;
  exec::DS2Scan leaf(ca, Predicate::LessThan(20), &stats);  // ~2% cluster
  exec::DS4ScanMerge ds4(&leaf, cb, Predicate::LessThan(5), &stats);
  auto got = DrainTuples(&ds4);

  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 20 && b[i] < 5) {
      ASSERT_LT(expected, got.size());
      EXPECT_EQ(got[expected].first, i);
      EXPECT_EQ(got[expected].second[0], a[i]);
      EXPECT_EQ(got[expected].second[1], b[i]);
      ++expected;
    }
  }
  EXPECT_EQ(got.size(), expected);
  // The clustered 2% predicate leaves most of b's blocks untouched: only
  // a's full scan plus the handful of b blocks containing candidates are
  // fetched.
  EXPECT_LT(stats.blocks_fetched, ca->num_blocks() + 5);
}

TEST_F(ExecTest, SpcConstructsShortCircuit) {
  const size_t n = 100000;
  std::vector<Value> a = testing::RunnyValues(n, 10, 1.0, 29);
  std::vector<Value> b = testing::RunnyValues(n, 10, 1.0, 31);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  const auto* cb = Load("b", Encoding::kRle, b);

  ExecStats stats;
  exec::SpcScan spc({{ca, Predicate::LessThan(3)}, {cb, Predicate::LessThan(9)}},
                    &stats);
  auto got = DrainTuples(&spc);
  size_t count = 0;
  size_t evals_expected = 0;
  for (size_t i = 0; i < n; ++i) {
    ++evals_expected;  // pred a always evaluated
    if (a[i] < 3) {
      ++evals_expected;  // pred b only when a passes (short-circuit)
      if (b[i] < 9) ++count;
    }
  }
  EXPECT_EQ(got.size(), count);
  EXPECT_EQ(stats.predicate_evals, evals_expected);
}

TEST_F(ExecTest, AndIntersectsAlignedChunks) {
  const size_t n = 250000;
  std::vector<Value> a = testing::RunnyValues(n, 100, 1.0, 37);
  std::vector<Value> b = testing::RunnyValues(n, 100, 1.0, 41);
  std::vector<Value> c = testing::RunnyValues(n, 100, 1.0, 43);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  const auto* cb = Load("b", Encoding::kUncompressed, b);
  const auto* cc = Load("c", Encoding::kUncompressed, c);

  ExecStats stats;
  exec::DS1Scan s1(ca, 0, Predicate::LessThan(50), true, &stats);
  exec::DS1Scan s2(cb, 1, Predicate::LessThan(70), true, &stats);
  exec::DS1Scan s3(cc, 2, Predicate::GreaterEqual(20), true, &stats);
  exec::AndOp and_op({&s1, &s2, &s3}, &stats);

  // Check positions and that all three mini-columns arrive merged.
  std::vector<Position> got;
  MultiColumnChunk chunk;
  while (true) {
    ASSERT_OK_AND_ASSIGN(bool has, and_op.Next(&chunk));
    if (!has) break;
    EXPECT_EQ(chunk.minis.size(), 3u);
    chunk.desc.ForEachPosition([&](Position p) { got.push_back(p); });
  }
  std::vector<Position> expected;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 50 && b[i] < 70 && c[i] >= 20) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(stats.position_ands, 0u);
}

TEST_F(ExecTest, MergeStitchesFromMinisWithoutRefetch) {
  const size_t n = 150000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 300, 8.0, 47);
  std::vector<Value> b = testing::RunnyValues(n, 7, 2.0, 53);
  const auto* ca = Load("a", Encoding::kRle, a);
  const auto* cb = Load("b", Encoding::kUncompressed, b);

  ExecStats stats;
  exec::DS1Scan s1(ca, 0, Predicate::LessThan(150), true, &stats);
  exec::DS1Scan s2(cb, 1, Predicate::LessThan(6), true, &stats);
  exec::AndOp and_op({&s1, &s2}, &stats);
  exec::MergeOp merge(&and_op, {{0, nullptr}, {1, nullptr}}, &stats);
  // Null fallback readers prove the mini-columns carry all needed data.
  auto got = DrainTuples(&merge);

  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 150 && b[i] < 6) {
      ASSERT_LT(j, got.size());
      EXPECT_EQ(got[j].first, i);
      EXPECT_EQ(got[j].second[0], a[i]);
      EXPECT_EQ(got[j].second[1], b[i]);
      ++j;
    }
  }
  EXPECT_EQ(got.size(), j);
}

TEST_F(ExecTest, GatherFallsBackToReaderWithoutMini) {
  const size_t n = 50000;
  std::vector<Value> a = testing::RunnyValues(n, 100, 1.0, 59);
  const auto* ca = Load("a", Encoding::kUncompressed, a);

  ExecStats stats;
  MultiColumnChunk chunk;
  chunk.begin = 0;
  chunk.end = n;
  position::SetBuilder builder(0, n);
  for (Position p = 100; p < 200; ++p) builder.Add(p);
  for (Position p = 40000; p < 40010; ++p) builder.Add(p);
  chunk.desc = std::move(builder).Build();

  std::vector<Value> got;
  ASSERT_OK(exec::GatherColumnValues(chunk, 0, ca, &stats, &got));
  ASSERT_EQ(got.size(), 110u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], a[100 + i]);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[100 + i], a[40000 + i]);
  EXPECT_GT(stats.blocks_fetched, 0u);
}

TEST_F(ExecTest, BlocksCoveringPositionsDeduplicates) {
  std::vector<Value> a(30000, 1);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  position::SetBuilder builder(0, 30000);
  builder.AddRange(0, 10);       // block 0
  builder.AddRange(100, 200);    // block 0 again
  builder.AddRange(9000, 9010);  // block 1
  auto sel = std::move(builder).Build();
  auto blocks = exec::BlocksCoveringPositions(ca, sel);
  EXPECT_EQ(blocks, (std::vector<uint64_t>{0, 1}));
}

TEST_F(ExecTest, IndexScanLeafEmitsRangeWithoutFetches) {
  const size_t n = 200000;
  std::vector<Value> a(n);
  for (size_t i = 0; i < n; ++i) a[i] = static_cast<Value>(i / 100);
  const auto* ca = Load("ix", Encoding::kUncompressed, a);
  ASSERT_TRUE(ca->meta().sorted);

  ExecStats stats;
  auto range_r = ca->PositionRangeFor(Predicate::LessThan(500));
  ASSERT_TRUE(range_r.ok());
  exec::IndexScan scan(ca, *range_r, &stats);
  std::vector<Position> got = DrainPositions(&scan);
  ASSERT_EQ(got.size(), 50000u);
  EXPECT_EQ(got.front(), 0u);
  EXPECT_EQ(got.back(), 49999u);
  // The whole point: no blocks read at execution time.
  EXPECT_EQ(stats.blocks_fetched, 0u);
}

TEST_F(ExecTest, IndexScanPipelinedIntersectsInput) {
  const size_t n = 150000;
  std::vector<Value> a = testing::RunnyValues(n, 100, 1.0, 77);
  std::vector<Value> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = static_cast<Value>(i / 10);
  const auto* ca = Load("ipa", Encoding::kUncompressed, a);
  const auto* cs = Load("ips", Encoding::kUncompressed, sorted);

  ExecStats stats;
  exec::DS1Scan first(ca, 0, Predicate::LessThan(30), true, &stats);
  auto range_r = cs->PositionRangeFor(Predicate::Between(2000, 9999));
  ASSERT_TRUE(range_r.ok());
  exec::IndexScan second(&first, cs, *range_r, &stats);
  std::vector<Position> got = DrainPositions(&second);

  std::vector<Position> expected;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 30 && sorted[i] >= 2000 && sorted[i] <= 9999) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_F(ExecTest, TupleChunkLayout) {
  exec::TupleChunk chunk(3);
  EXPECT_TRUE(chunk.empty());
  Value row1[3] = {1, 2, 3};
  chunk.AppendTuple(10, row1);
  Value* slots = chunk.AppendTuple(20);
  slots[0] = 4;
  slots[1] = 5;
  slots[2] = 6;
  ASSERT_EQ(chunk.num_tuples(), 2u);
  EXPECT_EQ(chunk.position(0), 10u);
  EXPECT_EQ(chunk.position(1), 20u);
  EXPECT_EQ(chunk.value(0, 0), 1);
  EXPECT_EQ(chunk.value(0, 2), 3);
  EXPECT_EQ(chunk.value(1, 1), 5);
  // Row-major contiguity.
  EXPECT_EQ(chunk.data(),
            (std::vector<Value>{1, 2, 3, 4, 5, 6}));
  chunk.Reset(2);
  EXPECT_EQ(chunk.width(), 2u);
  EXPECT_TRUE(chunk.empty());
}

TEST_F(ExecTest, ChunkTupleEmitterAppends) {
  exec::TupleChunk chunk(2);
  exec::ChunkTupleEmitter emitter(&chunk);
  exec::TupleEmitter* sink = &emitter;
  Value row[2] = {7, 8};
  sink->Emit(42, row);
  ASSERT_EQ(chunk.num_tuples(), 1u);
  EXPECT_EQ(chunk.position(0), 42u);
  EXPECT_EQ(chunk.value(0, 1), 8);
}

TEST_F(ExecTest, WindowCursorCoversColumnExactly) {
  std::vector<Value> a(150000, 1);
  const auto* ca = Load("wc", Encoding::kUncompressed, a);
  exec::WindowCursor cursor(ca);
  Position covered = 0;
  int windows = 0;
  while (!cursor.done()) {
    EXPECT_EQ(cursor.begin(), covered);
    EXPECT_GT(cursor.end(), cursor.begin());
    EXPECT_LE(cursor.end(), a.size());
    covered = cursor.end();
    ++windows;
    cursor.Advance();
  }
  EXPECT_EQ(covered, a.size());
  EXPECT_EQ(windows, static_cast<int>(
                         (a.size() + kChunkPositions - 1) / kChunkPositions));
}

TEST_F(ExecTest, MiniColumnValueAtAcrossBlocks) {
  std::vector<Value> a = testing::RunnyValues(30000, 1000, 1.0, 79);
  const auto* ca = Load("mv", Encoding::kUncompressed, a);
  ExecStats stats;
  exec::DS1Scan scan(ca, 0, Predicate::True(), true, &stats);
  MultiColumnChunk chunk;
  ASSERT_OK_AND_ASSIGN(bool has, scan.Next(&chunk));
  ASSERT_TRUE(has);
  const exec::MiniColumn* mini = chunk.FindMini(0);
  ASSERT_NE(mini, nullptr);
  for (Position p : {Position{0}, Position{8127}, Position{8128},
                     Position{20000}}) {
    EXPECT_EQ(mini->ValueAt(p), a[p]) << p;
  }
}

TEST_F(ExecTest, EmptyColumnChunking) {
  // A column with exactly one chunk window worth of values.
  std::vector<Value> a(static_cast<size_t>(kChunkPositions), 5);
  const auto* ca = Load("a", Encoding::kUncompressed, a);
  ExecStats stats;
  exec::DS1Scan scan(ca, 0, Predicate::Equal(5), false, &stats);
  MultiColumnChunk chunk;
  ASSERT_OK_AND_ASSIGN(bool has, scan.Next(&chunk));
  ASSERT_TRUE(has);
  EXPECT_EQ(chunk.begin, 0u);
  EXPECT_EQ(chunk.end, kChunkPositions);
  EXPECT_EQ(chunk.desc.Cardinality(), kChunkPositions);
  ASSERT_OK_AND_ASSIGN(bool more, scan.Next(&chunk));
  EXPECT_FALSE(more);
}

}  // namespace
}  // namespace cstore
