// SQL front-end tests: lexer, parser, binder semantics, selectivity
// estimation, end-to-end execution, and strategy auto-selection.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cstore {
namespace {

using sql::Condition;
using sql::Engine;
using sql::Parse;
using sql::ParsedQuery;
using sql::TokenType;
using testing::TempDir;

TEST(LexerTest, TokenizesQuery) {
  auto tokens = sql::Tokenize(
      "SELECT a, SUM(b) FROM t WHERE a < 10 AND b >= 'x' GROUP BY a");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const auto& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kSelect, TokenType::kIdentifier, TokenType::kComma,
                TokenType::kSum, TokenType::kLParen, TokenType::kIdentifier,
                TokenType::kRParen, TokenType::kFrom, TokenType::kIdentifier,
                TokenType::kWhere, TokenType::kIdentifier, TokenType::kLess,
                TokenType::kInteger, TokenType::kAnd, TokenType::kIdentifier,
                TokenType::kGreaterEq, TokenType::kString, TokenType::kGroup,
                TokenType::kBy, TokenType::kIdentifier, TokenType::kEof}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = sql::Tokenize("select From WHERE and");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kSelect);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFrom);
  EXPECT_EQ((*tokens)[2].type, TokenType::kWhere);
  EXPECT_EQ((*tokens)[3].type, TokenType::kAnd);
}

TEST(LexerTest, NegativeIntegersAndOperators) {
  auto tokens = sql::Tokenize("a <= -42 <> != >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kLessEq);
  EXPECT_EQ((*tokens)[2].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[2].number, -42);
  EXPECT_EQ((*tokens)[3].type, TokenType::kNotEq);
  EXPECT_EQ((*tokens)[4].type, TokenType::kNotEq);
  EXPECT_EQ((*tokens)[5].type, TokenType::kGreaterEq);
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(sql::Tokenize("SELECT $ FROM t").ok());
  EXPECT_FALSE(sql::Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(sql::Tokenize("a ! b").ok());
}

TEST(ParserTest, SimpleSelection) {
  auto q = Parse("SELECT shipdate, linenum FROM lineitem "
                 "WHERE shipdate < 100 AND linenum < 7");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->table, "lineitem");
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[0].column, "shipdate");
  EXPECT_FALSE(q->items[0].aggregated);
  ASSERT_EQ(q->conditions.size(), 2u);
  EXPECT_EQ(q->conditions[0].column, "shipdate");
  EXPECT_EQ(q->conditions[0].op, Condition::Op::kLess);
  EXPECT_EQ(q->conditions[0].a.int_value, 100);
  EXPECT_FALSE(q->group_by.has_value());
}

TEST(ParserTest, AggregateWithGroupBy) {
  auto q = Parse("SELECT shipdate, SUM(linenum) FROM lineitem "
                 "WHERE linenum < 7 GROUP BY shipdate");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_TRUE(q->items[1].aggregated);
  EXPECT_EQ(q->items[1].func, exec::AggFunc::kSum);
  ASSERT_TRUE(q->group_by.has_value());
  EXPECT_EQ(*q->group_by, "shipdate");
}

TEST(ParserTest, BetweenSwallowsItsAnd) {
  auto q = Parse("SELECT a FROM t WHERE a BETWEEN 5 AND 10 AND b = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->conditions.size(), 2u);
  EXPECT_EQ(q->conditions[0].op, Condition::Op::kBetween);
  EXPECT_EQ(q->conditions[0].a.int_value, 5);
  EXPECT_EQ(q->conditions[0].b.int_value, 10);
  EXPECT_EQ(q->conditions[1].op, Condition::Op::kEq);
}

TEST(ParserTest, DateLiteralsAndStar) {
  auto q = Parse("SELECT * FROM lineitem WHERE shipdate < '1995-01-01'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->items[0].star);
  EXPECT_TRUE(q->conditions[0].a.is_date);
  EXPECT_EQ(q->conditions[0].a.date_text, "1995-01-01");
}

TEST(ParserTest, UpdateStatement) {
  auto stmt = sql::ParseStatement(
      "UPDATE t SET b = 5, c = '1993-01-01' WHERE a < 10 AND b <> 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, sql::ParsedStatement::Kind::kUpdate);
  EXPECT_EQ(stmt->update.table, "t");
  ASSERT_EQ(stmt->update.sets.size(), 2u);
  EXPECT_EQ(stmt->update.sets[0].first, "b");
  EXPECT_EQ(stmt->update.sets[0].second.int_value, 5);
  EXPECT_TRUE(stmt->update.sets[1].second.is_date);
  ASSERT_EQ(stmt->update.conditions.size(), 2u);
  EXPECT_EQ(stmt->update.conditions[1].op, Condition::Op::kNotEq);

  EXPECT_FALSE(sql::ParseStatement("UPDATE t SET").ok());
  EXPECT_FALSE(sql::ParseStatement("UPDATE t b = 5").ok());
  EXPECT_FALSE(sql::ParseStatement("UPDATE t SET b < 5").ok());
  EXPECT_FALSE(sql::ParseStatement("UPDATE t SET b = 1, b = 2").ok());
}

TEST(ParserTest, PositionalParameters) {
  auto stmt = sql::ParseStatement(
      "SELECT a FROM t WHERE a BETWEEN ? AND ? AND b = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->param_count, 3);
  const auto& conds = stmt->select.conditions;
  ASSERT_EQ(conds.size(), 2u);
  EXPECT_TRUE(conds[0].a.is_param);
  EXPECT_EQ(conds[0].a.param_index, 0);
  EXPECT_TRUE(conds[0].b.is_param);
  EXPECT_EQ(conds[0].b.param_index, 1);
  EXPECT_EQ(conds[1].a.param_index, 2);

  auto ins = sql::ParseStatement("INSERT INTO t VALUES (?, 2, ?)");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->param_count, 2);
  EXPECT_TRUE(ins->insert.rows[0][0].is_param);
  EXPECT_FALSE(ins->insert.rows[0][1].is_param);

  auto upd = sql::ParseStatement("UPDATE t SET b = ? WHERE a = ?");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->param_count, 2);

  // '?' is only a literal, never a column or table.
  EXPECT_FALSE(sql::ParseStatement("SELECT ? FROM t").ok());
  EXPECT_FALSE(sql::ParseStatement("SELECT a FROM ?").ok());
}

TEST(ParserTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a t WHERE x < 1").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a <").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(Parse("SELECT SUM(a FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t trailing garbage").ok());
}

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    const size_t n = 60000;
    a_ = testing::SortedRunnyValues(n, 500, 8.0, 1);
    b_ = testing::RunnyValues(n, 7, 2.0, 2);
    c_ = testing::RunnyValues(n, 100, 1.0, 3);
    ASSERT_OK(db_->CreateColumn("t.a", codec::Encoding::kRle, a_));
    ASSERT_OK(db_->CreateColumn("t.b", codec::Encoding::kUncompressed, b_));
    ASSERT_OK(db_->CreateColumn("t.c", codec::Encoding::kUncompressed, c_));
    ASSERT_OK(db_->RegisterTable(
        "t", {{"a", "t.a"}, {"b", "t.b"}, {"c", "t.c"}}));
    engine_ = std::make_unique<Engine>(db_.get());
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
  std::vector<Value> a_, b_, c_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SqlEngineTest, SelectionEndToEnd) {
  auto r = engine_->Execute("SELECT a, b FROM t WHERE a < 100 AND b < 6",
                            plan::Strategy::kLmParallel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->column_names, (std::vector<std::string>{"a", "b"}));
  uint64_t expected = 0;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (a_[i] < 100 && b_[i] < 6) ++expected;
  }
  EXPECT_EQ(r->tuples.num_tuples(), expected);
}

TEST_F(SqlEngineTest, WhereOnlyColumnsProjectedOut) {
  auto r = engine_->Execute("SELECT b FROM t WHERE a < 50",
                            plan::Strategy::kEmParallel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.width(), 1u);
  size_t j = 0;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (a_[i] < 50) {
      ASSERT_LT(j, r->tuples.num_tuples());
      EXPECT_EQ(r->tuples.value(j, 0), b_[i]);
      ++j;
    }
  }
  EXPECT_EQ(r->tuples.num_tuples(), j);
}

TEST_F(SqlEngineTest, StarExpandsAllColumns) {
  auto r = engine_->Execute("SELECT * FROM t WHERE a = 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->column_names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r->tuples.width(), 3u);
}

TEST_F(SqlEngineTest, RangeConditionsMergeIntoBetween) {
  auto r = engine_->Execute(
      "SELECT a FROM t WHERE a >= 100 AND a < 200",
      plan::Strategy::kLmParallel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t expected = 0;
  for (Value v : a_) {
    if (v >= 100 && v < 200) ++expected;
  }
  EXPECT_EQ(r->tuples.num_tuples(), expected);
}

TEST_F(SqlEngineTest, AggregateEndToEnd) {
  auto r = engine_->Execute(
      "SELECT a, SUM(b) FROM t WHERE b < 6 GROUP BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::map<Value, int64_t> expected;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (b_[i] < 6) expected[a_[i]] += b_[i];
  }
  ASSERT_EQ(r->tuples.num_tuples(), expected.size());
  size_t i = 0;
  for (const auto& [g, s] : expected) {
    EXPECT_EQ(r->tuples.value(i, 0), g);
    EXPECT_EQ(r->tuples.value(i, 1), s);
    ++i;
  }
}

TEST_F(SqlEngineTest, AggregateColumnOrderFollowsSelectList) {
  auto r = engine_->Execute(
      "SELECT COUNT(b), a FROM t GROUP BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->column_names[0], "agg(b)");
  EXPECT_EQ(r->column_names[1], "a");
  std::map<Value, int64_t> counts;
  for (size_t i = 0; i < a_.size(); ++i) ++counts[a_[i]];
  ASSERT_EQ(r->tuples.num_tuples(), counts.size());
  size_t i = 0;
  for (const auto& [g, c] : counts) {
    EXPECT_EQ(r->tuples.value(i, 0), c);  // aggregate first per select list
    EXPECT_EQ(r->tuples.value(i, 1), g);
    ++i;
  }
}

TEST_F(SqlEngineTest, GlobalAggregates) {
  // No GROUP BY: a single aggregate over the filtered rows.
  int64_t sum = 0;
  int64_t count = 0;
  Value vmin = 0;
  Value vmax = 0;
  bool first = true;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (a_[i] >= 100) continue;
    sum += b_[i];
    ++count;
    vmin = first ? b_[i] : std::min(vmin, b_[i]);
    vmax = first ? b_[i] : std::max(vmax, b_[i]);
    first = false;
  }

  struct Case {
    const char* sql;
    int64_t expected;
  };
  const Case cases[] = {
      {"SELECT SUM(b) FROM t WHERE a < 100", sum},
      {"SELECT COUNT(b) FROM t WHERE a < 100", count},
      {"SELECT MIN(b) FROM t WHERE a < 100", vmin},
      {"SELECT MAX(b) FROM t WHERE a < 100", vmax},
      {"SELECT AVG(b) FROM t WHERE a < 100", count ? sum / count : 0},
  };
  for (const Case& c : cases) {
    for (plan::Strategy s :
         {plan::Strategy::kEmParallel, plan::Strategy::kLmParallel,
          plan::Strategy::kLmPipelined}) {
      auto r = engine_->Execute(c.sql, s);
      ASSERT_TRUE(r.ok()) << c.sql << ": " << r.status().ToString();
      ASSERT_EQ(r->tuples.num_tuples(), 1u) << c.sql;
      EXPECT_EQ(r->tuples.value(0, 0), c.expected)
          << c.sql << " via " << StrategyName(s);
    }
  }
}

TEST_F(SqlEngineTest, AvgWithGroupBy) {
  auto r = engine_->Execute("SELECT a, AVG(c) FROM t GROUP BY a",
                            plan::Strategy::kLmParallel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::map<Value, std::pair<int64_t, int64_t>> acc;  // sum, count
  for (size_t i = 0; i < a_.size(); ++i) {
    acc[a_[i]].first += c_[i];
    acc[a_[i]].second += 1;
  }
  ASSERT_EQ(r->tuples.num_tuples(), acc.size());
  size_t i = 0;
  for (const auto& [g, sc] : acc) {
    EXPECT_EQ(r->tuples.value(i, 0), g);
    EXPECT_EQ(r->tuples.value(i, 1), sc.first / sc.second);
    ++i;
  }
}

TEST_F(SqlEngineTest, GlobalAggregateRejectsExtraItems) {
  EXPECT_TRUE(
      engine_->Execute("SELECT a, SUM(b) FROM t").status().IsNotSupported());
  EXPECT_TRUE(engine_->Execute("SELECT SUM(a), SUM(b) FROM t")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlEngineTest, AutoStrategyRunsAndAgreesWithExplicit) {
  const char* query = "SELECT a, b FROM t WHERE a < 250 AND b < 7";
  auto auto_r = engine_->Execute(query);
  ASSERT_TRUE(auto_r.ok()) << auto_r.status().ToString();
  auto explicit_r = engine_->Execute(query, plan::Strategy::kEmParallel);
  ASSERT_TRUE(explicit_r.ok());
  EXPECT_EQ(auto_r->stats.checksum, explicit_r->stats.checksum);
  EXPECT_EQ(auto_r->tuples.num_tuples(), explicit_r->tuples.num_tuples());
}

TEST_F(SqlEngineTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(engine_->Execute("SELECT a FROM missing").status().IsNotFound());
  EXPECT_TRUE(
      engine_->Execute("SELECT ghost FROM t").status().IsNotFound());
  // A quoted literal that isn't a date binds as a string literal (interned
  // at >= 1 << 40 for the system.* string columns), so comparing it against
  // an integer column succeeds and simply matches every row below the id —
  // not an error. Equality with a never-interned-in-data string matches
  // nothing.
  auto str_eq = engine_->Execute("SELECT a FROM t WHERE a = 'not-a-date'");
  ASSERT_TRUE(str_eq.ok()) << str_eq.status().ToString();
  EXPECT_EQ(str_eq->tuples.num_tuples(), 0u);
  EXPECT_TRUE(engine_->Execute("SELECT SUM(a), SUM(b) FROM t GROUP BY a")
                  .status()
                  .IsNotSupported());
  EXPECT_FALSE(
      engine_->Execute("SELECT b, SUM(b) FROM t GROUP BY a").ok());
}

TEST_F(SqlEngineTest, SelectivityEstimates) {
  codec::ColumnMeta meta;
  meta.num_values = 1000;
  meta.min_value = 0;
  meta.max_value = 99;  // width 100
  meta.num_distinct = 100;
  EXPECT_NEAR(Engine::EstimateSelectivity(meta,
                                          codec::Predicate::LessThan(50)),
              0.5, 1e-9);
  EXPECT_NEAR(Engine::EstimateSelectivity(meta,
                                          codec::Predicate::GreaterEqual(90)),
              0.1, 1e-9);
  EXPECT_NEAR(Engine::EstimateSelectivity(meta, codec::Predicate::Equal(5)),
              0.01, 1e-9);
  EXPECT_NEAR(Engine::EstimateSelectivity(meta,
                                          codec::Predicate::Between(10, 19)),
              0.1, 1e-9);
  EXPECT_NEAR(Engine::EstimateSelectivity(meta, codec::Predicate::True()),
              1.0, 1e-9);
  // Out-of-domain thresholds clamp.
  EXPECT_NEAR(Engine::EstimateSelectivity(meta,
                                          codec::Predicate::LessThan(-5)),
              0.0, 1e-9);
  EXPECT_NEAR(Engine::EstimateSelectivity(meta,
                                          codec::Predicate::LessThan(1000)),
              1.0, 1e-9);
}

TEST_F(SqlEngineTest, ExplainReportsAllStrategies) {
  auto report =
      engine_->Explain("SELECT a, b FROM t WHERE a < 100 AND b < 6");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (plan::Strategy s : plan::kAllStrategies) {
    EXPECT_NE(report->find(StrategyName(s)), std::string::npos)
        << *report;
  }
  EXPECT_NE(report->find("<- chosen"), std::string::npos);
  EXPECT_NE(report->find("inputs:"), std::string::npos);

  auto agg_report =
      engine_->Explain("SELECT a, SUM(b) FROM t GROUP BY a");
  ASSERT_TRUE(agg_report.ok());
  EXPECT_NE(agg_report->find("groups:"), std::string::npos);

  EXPECT_FALSE(engine_->Explain("SELECT nope FROM t").ok());
}

TEST_F(SqlEngineTest, UpdateThroughEngine) {
  // The legacy Engine facade speaks UPDATE too (it delegates to api::).
  uint64_t expected = 0;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (a_[i] < 5) ++expected;
  }
  auto upd = engine_->Execute("UPDATE t SET c = 12345 WHERE a < 5");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_TRUE(upd->is_write);
  EXPECT_EQ(upd->rows_affected, expected);
  auto check = engine_->Execute("SELECT COUNT(c) FROM t WHERE c = 12345");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->tuples.num_tuples(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(check->tuples.value(0, 0)), expected);
}

TEST_F(SqlEngineTest, ParameterizedStatementsNeedPrepare) {
  EXPECT_TRUE(engine_->Execute("SELECT a FROM t WHERE a < ?")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SqlEngineTest, DateLiteralBinding) {
  // a's domain is 0..499 (day offsets); '1993-01-01' = day 366.
  auto r = engine_->Execute(
      "SELECT a FROM t WHERE a < '1993-01-01'",
      plan::Strategy::kLmParallel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t expected = 0;
  for (Value v : a_) {
    if (v < 366) ++expected;
  }
  EXPECT_EQ(r->tuples.num_tuples(), expected);
}

}  // namespace
}  // namespace cstore
