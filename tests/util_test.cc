// Tests for the util substrate: Status/Result, PRNG, bit utilities.

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/bit_util.h"
#include "util/common.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace cstore {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing column");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing column");
  EXPECT_EQ(s.ToString(), "NotFound: missing column");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CSTORE_ASSIGN_OR_RETURN(int h, Half(x));
  CSTORE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(RandomTest, DeterministicWithSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformRangeBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformCoversDomain) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, BernoulliApproximatesP) {
  Random rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(BitUtilTest, WordsForBits) {
  EXPECT_EQ(bit_util::WordsForBits(0), 0u);
  EXPECT_EQ(bit_util::WordsForBits(1), 1u);
  EXPECT_EQ(bit_util::WordsForBits(64), 1u);
  EXPECT_EQ(bit_util::WordsForBits(65), 2u);
  EXPECT_EQ(bit_util::WordsForBits(128), 2u);
}

TEST(BitUtilTest, SetGetClear) {
  uint64_t words[2] = {0, 0};
  bit_util::SetBit(words, 0);
  bit_util::SetBit(words, 63);
  bit_util::SetBit(words, 64);
  bit_util::SetBit(words, 127);
  EXPECT_TRUE(bit_util::GetBit(words, 0));
  EXPECT_TRUE(bit_util::GetBit(words, 63));
  EXPECT_TRUE(bit_util::GetBit(words, 64));
  EXPECT_TRUE(bit_util::GetBit(words, 127));
  EXPECT_FALSE(bit_util::GetBit(words, 1));
  EXPECT_FALSE(bit_util::GetBit(words, 65));
  bit_util::ClearBit(words, 63);
  EXPECT_FALSE(bit_util::GetBit(words, 63));
}

TEST(BitUtilTest, PopCountWords) {
  uint64_t words[3] = {~uint64_t{0}, 0, 0x5555555555555555ULL};
  EXPECT_EQ(bit_util::PopCountWords(words, 3), 64u + 0u + 32u);
}

TEST(BitUtilTest, LowBitsMask) {
  EXPECT_EQ(bit_util::LowBitsMask(0), 0u);
  EXPECT_EQ(bit_util::LowBitsMask(1), 1u);
  EXPECT_EQ(bit_util::LowBitsMask(8), 0xFFu);
  EXPECT_EQ(bit_util::LowBitsMask(64), ~uint64_t{0});
}

TEST(BitUtilTest, CountTrailingZeros) {
  EXPECT_EQ(bit_util::CountTrailingZeros(1), 0);
  EXPECT_EQ(bit_util::CountTrailingZeros(0x8000000000000000ULL), 63);
  EXPECT_EQ(bit_util::CountTrailingZeros(0b1000), 3);
}

TEST(BitUtilTest, AlignUp) {
  EXPECT_EQ(bit_util::AlignUp(0, 64), 0u);
  EXPECT_EQ(bit_util::AlignUp(1, 64), 64u);
  EXPECT_EQ(bit_util::AlignUp(64, 64), 64u);
  EXPECT_EQ(bit_util::AlignUp(65, 64), 128u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  int64_t x = 0;
  for (int i = 0; i < 1000000; ++i) x += i;
  asm volatile("" : : "r"(x) : "memory");  // keep the loop
  double us = sw.ElapsedMicros();
  EXPECT_GT(us, 0.0);
  // The two reads happen at different instants; they must agree to within
  // the time the calls themselves take.
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedMicros() / 1000.0, 0.05);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMicros(), us + 1.0);
}

}  // namespace
}  // namespace cstore
