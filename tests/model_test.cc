// Cost-model tests: formula sanity (Figures 1-6), monotonicity properties,
// plan-prediction behaviour matching the paper's qualitative claims, the
// calibrator, and the advisor's choices.

#include <gtest/gtest.h>

#include "model/advisor.h"
#include "model/calibrate.h"
#include "model/cost_model.h"
#include "test_util.h"

namespace cstore {
namespace {

using model::Advisor;
using model::ColumnStats;
using model::Cost;
using model::CostParams;
using model::SelectionModelInput;
using plan::Strategy;

ColumnStats MakeCol(double blocks, double tuples, double rl = 1.0,
                    codec::Encoding enc = codec::Encoding::kUncompressed) {
  ColumnStats c;
  c.num_blocks = blocks;
  c.num_tuples = tuples;
  c.run_length = rl;
  c.encoding = enc;
  return c;
}

CostParams Paper() { return CostParams::Paper2006(); }

TEST(CostModelTest, DS1MatchesHandComputedFormula) {
  CostParams p = Paper();
  ColumnStats col = MakeCol(10, 80000, 4.0);
  col.fraction_cached = 0.0;
  Cost c = model::DS1Cost(col, 0.5, p);
  double cpu = 10 * p.bic + 80000 * (p.tic_col + p.fc) / 4.0 +
               0.5 * 80000 * p.fc;
  double io = (10 / p.pf * p.seek + 10 * p.read);
  EXPECT_DOUBLE_EQ(c.cpu, cpu);
  EXPECT_DOUBLE_EQ(c.io, io);
}

TEST(CostModelTest, DS2ChargesTupleIteratorOnOutput) {
  CostParams p = Paper();
  ColumnStats col = MakeCol(10, 80000);
  Cost c1 = model::DS1Cost(col, 0.5, p);
  Cost c2 = model::DS2Cost(col, 0.5, p);
  // Case 2's step 5 costs (TIC_TUP + FC) instead of FC per match.
  EXPECT_DOUBLE_EQ(c2.cpu - c1.cpu, 0.5 * 80000 * p.tic_tup);
  EXPECT_DOUBLE_EQ(c2.io, c1.io);
}

TEST(CostModelTest, DS3IoZeroWhenAlreadyAccessed) {
  CostParams p = Paper();
  ColumnStats col = MakeCol(10, 80000);
  Cost warm = model::DS3Cost(col, 1000, 10, 0.1, true, p);
  Cost cold = model::DS3Cost(col, 1000, 10, 0.1, false, p);
  EXPECT_DOUBLE_EQ(warm.io, 0.0);
  EXPECT_GT(cold.io, 0.0);
  EXPECT_DOUBLE_EQ(warm.cpu, cold.cpu);
}

TEST(CostModelTest, DS3RangedPositionsCheaperThanSingles) {
  CostParams p = Paper();
  ColumnStats col = MakeCol(10, 80000);
  Cost ranged = model::DS3Cost(col, 10000, 10000, 1.0, true, p);
  Cost singles = model::DS3Cost(col, 10000, 1, 1.0, true, p);
  EXPECT_LT(ranged.cpu, singles.cpu);
}

TEST(CostModelTest, AndBitInputsUseWordParallelism) {
  CostParams p = Paper();
  // Fragmented lists: bit-string AND should be much cheaper than per-run
  // iteration at run length 1.
  Cost ranges = model::AndCost({50000, 50000}, {1.0, 1.0}, false, p);
  Cost bits = model::AndCost({50000, 50000}, {1.0, 1.0}, true, p);
  EXPECT_LT(bits.cpu, ranges.cpu / 4);
}

TEST(CostModelTest, MergeLinearInValuesAndWidth) {
  CostParams p = Paper();
  EXPECT_DOUBLE_EQ(model::MergeCost(1000, 2, p).cpu,
                   2 * model::MergeCost(500, 2, p).cpu);
  EXPECT_DOUBLE_EQ(model::MergeCost(1000, 4, p).cpu,
                   2 * model::MergeCost(1000, 2, p).cpu);
}

TEST(CostModelTest, SpcShortCircuitReflectedInCost) {
  CostParams p = Paper();
  std::vector<ColumnStats> cols = {MakeCol(10, 80000), MakeCol(10, 80000)};
  // A selective first predicate shrinks the work on the second column.
  Cost selective = model::SpcCost(cols, {0.01, 0.9}, p);
  Cost permissive = model::SpcCost(cols, {0.9, 0.01}, p);
  EXPECT_LT(selective.cpu, permissive.cpu);
  EXPECT_DOUBLE_EQ(selective.io, permissive.io);  // always a full scan
}

TEST(CostModelTest, PositionRunLength) {
  EXPECT_DOUBLE_EQ(model::PositionRunLength(0.5, 100, true), 100.0);
  EXPECT_DOUBLE_EQ(model::PositionRunLength(0.5, 100, false), 2.0);
  EXPECT_NEAR(model::PositionRunLength(0.96, 100, false), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(model::PositionRunLength(1.0, 100, false), 100.0);
  EXPECT_DOUBLE_EQ(model::PositionRunLength(0.1, 0, false), 1.0);
}

class PredictionTest : public ::testing::Test {
 protected:
  SelectionModelInput RleInput() const {
    // The paper's Section 3.7 setup: both columns RLE, col1 clustered.
    SelectionModelInput in;
    in.col1 = MakeCol(1, 600000, 80, codec::Encoding::kRle);
    in.col2 = MakeCol(5, 600000, 12, codec::Encoding::kRle);
    in.sf1 = 0.5;
    in.sf2 = 0.96;
    in.col1_clustered = true;
    return in;
  }
};

TEST_F(PredictionTest, AllStrategiesFiniteAndPositive) {
  SelectionModelInput in = RleInput();
  for (Strategy s : plan::kAllStrategies) {
    Cost c = model::PredictSelection(s, in, Paper());
    EXPECT_GT(c.total(), 0.0) << StrategyName(s);
    EXPECT_LT(c.total(), 1e12) << StrategyName(s);
  }
}

TEST_F(PredictionTest, MonotoneInSelectivity) {
  SelectionModelInput in = RleInput();
  for (Strategy s : plan::kAllStrategies) {
    double prev = -1;
    for (double sf1 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      in.sf1 = sf1;
      double t = model::PredictSelection(s, in, Paper()).total();
      EXPECT_GE(t, prev) << StrategyName(s) << " at sf1=" << sf1;
      prev = t;
    }
  }
}

TEST_F(PredictionTest, LmPipelinedWinsAtLowSelectivityClustered) {
  SelectionModelInput in = RleInput();
  in.sf1 = 0.01;
  CostParams p = Paper();
  double lm_pipe =
      model::PredictSelection(Strategy::kLmPipelined, in, p).total();
  double em_par =
      model::PredictSelection(Strategy::kEmParallel, in, p).total();
  EXPECT_LT(lm_pipe, em_par);
}

TEST_F(PredictionTest, EmParallelIoIndependentOfSelectivity) {
  SelectionModelInput in = RleInput();
  CostParams p = Paper();
  in.sf1 = 0.0;
  double io_low = model::PredictSelection(Strategy::kEmParallel, in, p).io;
  in.sf1 = 1.0;
  double io_high = model::PredictSelection(Strategy::kEmParallel, in, p).io;
  EXPECT_DOUBLE_EQ(io_low, io_high);
}

TEST_F(PredictionTest, LmPipelinedIoScalesWithSelectivity) {
  SelectionModelInput in = RleInput();
  in.col2 = MakeCol(74, 600000, 1, codec::Encoding::kUncompressed);
  CostParams p = Paper();
  in.sf1 = 0.01;
  double io_low = model::PredictSelection(Strategy::kLmPipelined, in, p).io;
  in.sf1 = 1.0;
  double io_high = model::PredictSelection(Strategy::kLmPipelined, in, p).io;
  EXPECT_LT(io_low, io_high / 10);
}

TEST_F(PredictionTest, AggregationMakesLmFlat) {
  // The paper's Figure 12(b) shape: with aggregation, LM on RLE data is
  // nearly selectivity-independent while EM keeps growing.
  SelectionModelInput in = RleInput();
  CostParams p = Paper();
  double groups = 2500;

  in.sf1 = 0.1;
  double lm_low =
      model::PredictAggregation(Strategy::kLmParallel, in, groups, p).total();
  double em_low =
      model::PredictAggregation(Strategy::kEmParallel, in, groups, p).total();
  in.sf1 = 1.0;
  double lm_high =
      model::PredictAggregation(Strategy::kLmParallel, in, groups, p).total();
  double em_high =
      model::PredictAggregation(Strategy::kEmParallel, in, groups, p).total();

  EXPECT_LT(lm_high, em_high);                 // LM beats EM
  EXPECT_LT(lm_high - lm_low, em_high - em_low);  // and is flatter
}

TEST_F(PredictionTest, AggregationCheaperThanSelectionForLm) {
  // Constructing only group tuples must not cost more than constructing
  // every output tuple.
  SelectionModelInput in = RleInput();
  CostParams p = Paper();
  double sel =
      model::PredictSelection(Strategy::kLmParallel, in, p).total();
  double agg =
      model::PredictAggregation(Strategy::kLmParallel, in, 2500, p).total();
  EXPECT_LT(agg, sel);
}

// --- Join model (two-phase: serial build + parallel probe) ------------------

model::JoinModelInput JoinInput(int workers) {
  model::JoinModelInput in;
  in.left_key = MakeCol(40, 300000);
  in.left_payload = MakeCol(40, 300000);
  in.sf = 0.5;
  in.right_key = MakeCol(4, 30000);
  in.right_payload = MakeCol(4, 30000);
  in.num_workers = workers;
  return in;
}

TEST(JoinModelTest, BuildIsNeverDiscountedByWorkers) {
  CostParams p = Paper();
  for (exec::JoinRightMode mode :
       {exec::JoinRightMode::kMaterialized, exec::JoinRightMode::kMultiColumn,
        exec::JoinRightMode::kSingleColumn}) {
    Cost build1, probe1, build4, probe4;
    Cost total1 = model::PredictJoin(mode, JoinInput(1), p, &build1, &probe1);
    Cost total4 = model::PredictJoin(mode, JoinInput(4), p, &build4, &probe4);
    // The phases themselves don't depend on the worker count...
    EXPECT_DOUBLE_EQ(build1.cpu, build4.cpu);
    EXPECT_DOUBLE_EQ(probe1.cpu, probe4.cpu);
    // ...the total discounts only the probe CPU: serial total = build +
    // probe; 4-worker total = build + probe * factor. So the modelled
    // speedup is strictly below the probe-only factor (Amdahl).
    EXPECT_DOUBLE_EQ(total1.cpu, build1.cpu + probe1.cpu);
    EXPECT_DOUBLE_EQ(total4.cpu,
                     build4.cpu + probe4.cpu * model::ParallelCpuFactor(4));
    EXPECT_LT(total4.cpu, total1.cpu);
    EXPECT_GT(total4.cpu, build1.cpu);  // the serial floor
  }
}

TEST(JoinModelTest, ModePredictionsMatchPaperOrdering) {
  CostParams p = Paper();
  model::JoinModelInput in = JoinInput(1);
  Cost mat = model::PredictJoin(exec::JoinRightMode::kMaterialized, in, p);
  Cost sc = model::PredictJoin(exec::JoinRightMode::kSingleColumn, in, p);
  // At sf=0.5 the single-column mode's out-of-order payload fetches charge
  // per-access seeks; it must predict worse than constructing inner tuples
  // up front (Figure 13's crossover is at much lower selectivity).
  EXPECT_GT(sc.total(), mat.total());
  // Multi-column reads both inner columns at build; single-column only the
  // key — its build must be the cheaper of the two.
  Cost mc_build, sc_build;
  model::PredictJoin(exec::JoinRightMode::kMultiColumn, in, p, &mc_build);
  model::PredictJoin(exec::JoinRightMode::kSingleColumn, in, p, &sc_build);
  EXPECT_LT(sc_build.total(), mc_build.total());
}

TEST(AdvisorTest, JoinRankingAndExplain) {
  Advisor advisor(Paper());
  model::JoinModelInput in = JoinInput(4);
  std::vector<model::JoinPrediction> ranked = advisor.RankJoin(in);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_LE(ranked[0].cost.total(), ranked[1].cost.total());
  EXPECT_LE(ranked[1].cost.total(), ranked[2].cost.total());
  EXPECT_EQ(advisor.ChooseJoinMode(in), ranked[0].mode);
  std::string report = advisor.ExplainJoin(in);
  EXPECT_NE(report.find("<- chosen"), std::string::npos);
  EXPECT_NE(report.find("build"), std::string::npos);
  EXPECT_NE(report.find("4 probe workers"), std::string::npos);
}

TEST(CalibratorTest, ProducesPlausibleConstants) {
  model::Calibrator::Options opts;
  opts.loop_size = 1 << 18;
  opts.repetitions = 2;
  model::Calibrator cal(opts);
  storage::DiskModel disk;  // disabled
  CostParams p = cal.Run(disk);
  // All CPU constants positive and below a microsecond on any sane machine.
  EXPECT_GT(p.fc, 0.0);
  EXPECT_LT(p.fc, 1.0);
  EXPECT_GT(p.tic_col, 0.0);
  EXPECT_GT(p.tic_tup, 0.0);
  EXPECT_GT(p.bic, 0.0);
  // Disk off → I/O constants zero.
  EXPECT_DOUBLE_EQ(p.seek, 0.0);
  EXPECT_DOUBLE_EQ(p.read, 0.0);
  EXPECT_EQ(p.word_bits, kWordBits);
}

TEST(CalibratorTest, UsesDiskModelWhenEnabled) {
  model::Calibrator::Options opts;
  opts.loop_size = 1 << 16;
  opts.repetitions = 1;
  model::Calibrator cal(opts);
  storage::DiskModel::Params dp;
  dp.enabled = true;
  dp.seek_micros = 1234;
  dp.read_micros = 567;
  storage::DiskModel disk(dp);
  CostParams p = cal.Run(disk);
  EXPECT_DOUBLE_EQ(p.seek, 1234.0);
  EXPECT_DOUBLE_EQ(p.read, 567.0);
}

TEST(AdvisorTest, RanksAllFourStrategies) {
  Advisor advisor(Paper());
  SelectionModelInput in;
  in.col1 = MakeCol(3, 600000, 80, codec::Encoding::kRle);
  in.col2 = MakeCol(74, 600000, 1, codec::Encoding::kUncompressed);
  in.sf1 = 0.5;
  in.sf2 = 0.96;
  auto ranked = advisor.RankSelection(in);
  ASSERT_EQ(ranked.size(), 4u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    if (ranked[i - 1].supported && ranked[i].supported) {
      EXPECT_LE(ranked[i - 1].cost.total(), ranked[i].cost.total());
    }
  }
}

TEST(AdvisorTest, BitVectorDemotesLmPipelined) {
  Advisor advisor(Paper());
  SelectionModelInput in;
  in.col1 = MakeCol(3, 600000, 80, codec::Encoding::kRle);
  in.col2 = MakeCol(20, 600000, 1, codec::Encoding::kBitVector);
  in.sf1 = 0.01;  // would otherwise favour pipelined LM
  auto ranked = advisor.RankSelection(in);
  EXPECT_FALSE(ranked.back().supported);
  EXPECT_EQ(ranked.back().strategy, Strategy::kLmPipelined);
  EXPECT_NE(advisor.ChooseSelection(in), Strategy::kLmPipelined);
}

TEST(AdvisorTest, HeuristicFollowsPaperConclusion) {
  SelectionModelInput in;
  in.col1 = MakeCol(74, 600000, 1, codec::Encoding::kUncompressed);
  in.col2 = MakeCol(74, 600000, 1, codec::Encoding::kUncompressed);
  in.col1_clustered = true;

  // High selectivity, no aggregation, no compression → EM.
  in.sf1 = 0.9;
  in.sf2 = 0.96;
  EXPECT_EQ(Advisor::Heuristic(in, false), Strategy::kEmParallel);

  // Aggregated → LM.
  EXPECT_TRUE(plan::IsLate(Advisor::Heuristic(in, true)));

  // Highly selective → LM (pipelined for a clustered first predicate).
  in.sf1 = 0.01;
  EXPECT_EQ(Advisor::Heuristic(in, false), Strategy::kLmPipelined);

  // Light-weight compression → LM.
  in.sf1 = 0.9;
  in.col1.encoding = codec::Encoding::kRle;
  EXPECT_TRUE(plan::IsLate(Advisor::Heuristic(in, false)));
}

}  // namespace
}  // namespace cstore
