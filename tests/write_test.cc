// Write-path tests: WriteStore snapshots, delete masking, the write-store
// tail through all four materialization strategies, snapshot isolation,
// TupleMover compaction, and the INSERT/DELETE SQL surface.
//
// The core invariant, checked everywhere: a query's (output_tuples,
// order-independent checksum) against a snapshot equal a brute-force
// evaluation of the same predicates over the visible rows — for every
// strategy, at 1/2/4 workers, before and after compaction, and regardless
// of writes applied after the snapshot was taken.

#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "plan/executor.h"
#include "plan/parallel.h"
#include "sql/engine.h"
#include "test_util.h"
#include "util/random.h"
#include "write/tuple_mover.h"

namespace cstore {
namespace {

using testing::TempDir;

constexpr int kWorkerCounts[] = {1, 2, 4};

/// Reference implementation: the table's visible logical content.
struct RefTable {
  std::vector<std::vector<Value>> cols;  // column-major, every row ever
  std::vector<bool> deleted;

  explicit RefTable(size_t k) : cols(k) {}

  size_t rows() const { return deleted.size(); }

  void Append(const std::vector<std::vector<Value>>& row_major) {
    for (const auto& row : row_major) {
      for (size_t c = 0; c < cols.size(); ++c) cols[c].push_back(row[c]);
      deleted.push_back(false);
    }
  }

  uint64_t DeleteWhere(size_t col, const codec::Predicate& pred) {
    uint64_t n = 0;
    for (size_t i = 0; i < rows(); ++i) {
      if (!deleted[i] && pred.Eval(cols[col][i])) {
        deleted[i] = true;
        ++n;
      }
    }
    return n;
  }

  bool Passes(size_t i, const std::vector<codec::Predicate>& preds) const {
    if (deleted[i]) return false;
    for (size_t c = 0; c < preds.size(); ++c) {
      if (!preds[c].Eval(cols[c][i])) return false;
    }
    return true;
  }

  /// Expected (tuples, checksum) of SELECT col_0..col_{k-1} WHERE preds.
  std::pair<uint64_t, uint64_t> ExpectedSelection(
      const std::vector<codec::Predicate>& preds) const {
    exec::TupleChunk chunk(static_cast<uint32_t>(cols.size()));
    std::vector<Value> row(cols.size());
    for (size_t i = 0; i < rows(); ++i) {
      if (!Passes(i, preds)) continue;
      for (size_t c = 0; c < cols.size(); ++c) row[c] = cols[c][i];
      chunk.AppendTuple(i, row.data());
    }
    return {chunk.num_tuples(), plan::ChunkDigest(chunk)};
  }

  /// Expected (groups, checksum) of SELECT g, SUM(a) ... GROUP BY g.
  std::pair<uint64_t, uint64_t> ExpectedGroupSum(
      const std::vector<codec::Predicate>& preds, size_t group_col,
      size_t agg_col) const {
    std::map<Value, int64_t> groups;
    for (size_t i = 0; i < rows(); ++i) {
      if (!Passes(i, preds)) continue;
      groups[cols[group_col][i]] += cols[agg_col][i];
    }
    exec::TupleChunk chunk(2);
    Position p = 0;
    for (const auto& [g, sum] : groups) {
      Value row[2] = {g, sum};
      chunk.AppendTuple(p++, row);
    }
    return {chunk.num_tuples(), plan::ChunkDigest(chunk)};
  }
};

class WriteTest : public ::testing::Test {
 protected:
  void OpenDb() {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  /// Creates and registers table `name` with the given per-column
  /// (column name, encoding, values).
  void MakeTable(const std::string& name,
                 const std::vector<std::tuple<std::string, codec::Encoding,
                                              std::vector<Value>>>& cols) {
    std::vector<std::pair<std::string, std::string>> mapping;
    for (const auto& [col, enc, values] : cols) {
      std::string file = name + "_" + col;
      ASSERT_OK(db_->CreateColumn(file, enc, values));
      mapping.emplace_back(col, file);
    }
    ASSERT_OK(db_->RegisterTable(name, mapping));
  }

  /// Binds the table's columns against the snapshot's generation.
  std::vector<const codec::ColumnReader*> BindColumns(
      const write::WriteSnapshot& snap) {
    std::vector<const codec::ColumnReader*> readers;
    for (const std::string& file : snap.column_files()) {
      auto r = db_->GetColumn(file);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      readers.push_back(*r);
    }
    return readers;
  }

  plan::SelectionQuery MakeSelection(
      const std::vector<const codec::ColumnReader*>& readers,
      const std::vector<codec::Predicate>& preds) {
    plan::SelectionQuery q;
    for (size_t c = 0; c < readers.size(); ++c) {
      q.columns.push_back({readers[c], preds[c]});
    }
    return q;
  }

  /// Runs the selection for every strategy × worker count and checks each
  /// result against `expected` (tuples, checksum).
  void CheckSelectionAllStrategies(
      const std::shared_ptr<const write::WriteSnapshot>& snap,
      const std::vector<codec::Predicate>& preds,
      std::pair<uint64_t, uint64_t> expected, const char* context) {
    std::vector<const codec::ColumnReader*> readers = BindColumns(*snap);
    plan::SelectionQuery query = MakeSelection(readers, preds);
    for (plan::Strategy s : plan::kAllStrategies) {
      for (int workers : kWorkerCounts) {
        plan::PlanConfig config;
        config.num_workers = workers;
        config.snapshot = snap;
        auto r = db_->RunSelection(query, s, config);
        ASSERT_TRUE(r.ok()) << context << " " << StrategyName(s) << ": "
                            << r.status().ToString();
        EXPECT_EQ(r->stats.output_tuples, expected.first)
            << context << " " << StrategyName(s) << " workers=" << workers;
        EXPECT_EQ(r->stats.checksum, expected.second)
            << context << " " << StrategyName(s) << " workers=" << workers;
      }
    }
  }

  /// Runs SELECT g, SUM(a) GROUP BY g for every strategy × worker count.
  void CheckAggAllStrategies(
      const std::shared_ptr<const write::WriteSnapshot>& snap,
      const std::vector<codec::Predicate>& preds, uint32_t group_index,
      uint32_t agg_index, std::pair<uint64_t, uint64_t> expected,
      const char* context) {
    std::vector<const codec::ColumnReader*> readers = BindColumns(*snap);
    plan::AggQuery query;
    query.selection = MakeSelection(readers, preds);
    query.group_index = group_index;
    query.agg_index = agg_index;
    query.func = exec::AggFunc::kSum;
    for (plan::Strategy s : plan::kAllStrategies) {
      for (int workers : kWorkerCounts) {
        plan::PlanConfig config;
        config.num_workers = workers;
        config.snapshot = snap;
        auto r = db_->RunAgg(query, s, config);
        ASSERT_TRUE(r.ok()) << context << " " << StrategyName(s) << ": "
                            << r.status().ToString();
        EXPECT_EQ(r->stats.output_tuples, expected.first)
            << context << " " << StrategyName(s) << " workers=" << workers;
        EXPECT_EQ(r->stats.checksum, expected.second)
            << context << " " << StrategyName(s) << " workers=" << workers;
      }
    }
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

/// Random rows matching the 3-column test schema.
std::vector<std::vector<Value>> RandomRows(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<Value>(rng.Uniform(40)),
                    static_cast<Value>(rng.Uniform(100)),
                    static_cast<Value>(rng.Uniform(500))});
  }
  return rows;
}

/// The shared scenario: ~3 chunk windows of base rows (RLE + uncompressed +
/// dict), a 5000-row write-store tail, and a value-predicate delete.
class WriteScenarioTest : public WriteTest {
 protected:
  static constexpr size_t kBaseRows = 200000;
  static constexpr size_t kTailRows = 5000;

  void SetUp() override {
    OpenDb();
    std::vector<Value> c0 = testing::RunnyValues(kBaseRows, 40, 6.0, 1);
    std::vector<Value> c1 = testing::RunnyValues(kBaseRows, 100, 1.0, 2);
    std::vector<Value> c2 = testing::RunnyValues(kBaseRows, 500, 2.0, 3);
    MakeTable("t", {{"c0", codec::Encoding::kRle, c0},
                    {"c1", codec::Encoding::kUncompressed, c1},
                    {"c2", codec::Encoding::kDict, c2}});
    ref_ = std::make_unique<RefTable>(3);
    for (size_t i = 0; i < kBaseRows; ++i) {
      ref_->Append({{c0[i], c1[i], c2[i]}});
    }

    // In-flight write-store state: inserts, then a predicate delete that
    // hits read store and tail alike.
    std::vector<std::vector<Value>> tail = RandomRows(kTailRows, 4);
    ASSERT_OK(db_->Insert("t", tail));
    ref_->Append(tail);
    auto deleted = db_->DeleteWhere("t", {{"c1", codec::Predicate::Equal(13)}});
    ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
    EXPECT_EQ(*deleted, ref_->DeleteWhere(1, codec::Predicate::Equal(13)));
    EXPECT_GT(*deleted, 0u);
  }

  std::vector<codec::Predicate> Preds() const {
    return {codec::Predicate::Between(5, 30), codec::Predicate::LessThan(60),
            codec::Predicate::True()};
  }

  std::unique_ptr<RefTable> ref_;
};

TEST_F(WriteScenarioTest, SnapshotScansMatchBruteForceAllStrategies) {
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  EXPECT_EQ(snap->base_rows(), kBaseRows);
  EXPECT_EQ(snap->tail_rows(), kTailRows);
  EXPECT_TRUE(snap->has_deletes());

  CheckSelectionAllStrategies(snap, Preds(),
                              ref_->ExpectedSelection(Preds()), "selection");
  CheckAggAllStrategies(snap, Preds(), 0, 1,
                        ref_->ExpectedGroupSum(Preds(), 0, 1), "agg");
}

TEST_F(WriteScenarioTest, SnapshotUnaffectedByLaterWrites) {
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  auto expected_sel = ref_->ExpectedSelection(Preds());
  auto expected_agg = ref_->ExpectedGroupSum(Preds(), 0, 1);

  // Writes after the snapshot epoch: more inserts (some would match the
  // delete predicate and the scan predicates) and another delete wave.
  ASSERT_OK(db_->Insert("t", RandomRows(3000, 5)));
  ASSERT_OK_AND_ASSIGN(uint64_t d,
                       db_->DeleteWhere(
                           "t", {{"c0", codec::Predicate::Equal(7)}}));
  EXPECT_GT(d, 0u);

  // The old snapshot still sees exactly its epoch.
  CheckSelectionAllStrategies(snap, Preds(), expected_sel, "stale-sel");
  CheckAggAllStrategies(snap, Preds(), 0, 1, expected_agg, "stale-agg");

  // A fresh snapshot sees the new state.
  RefTable ref2 = *ref_;
  ref2.Append(RandomRows(3000, 5));
  ref2.DeleteWhere(0, codec::Predicate::Equal(7));
  ASSERT_OK_AND_ASSIGN(auto snap2, db_->SnapshotTable("t"));
  CheckSelectionAllStrategies(snap2, Preds(), ref2.ExpectedSelection(Preds()),
                              "fresh-sel");
}

TEST_F(WriteScenarioTest, CompactionPreservesResults) {
  auto expected_sel = ref_->ExpectedSelection(Preds());
  auto expected_agg = ref_->ExpectedGroupSum(Preds(), 0, 1);

  EXPECT_EQ(db_->PendingWriteRows("t"), kTailRows);
  ASSERT_OK_AND_ASSIGN(uint64_t moved, db_->CompactTable("t"));
  EXPECT_EQ(moved, kTailRows);
  EXPECT_EQ(db_->PendingWriteRows("t"), 0u);

  // Fresh snapshot against the new generation: tail now lives in the read
  // store, deletes still masked, results bit-identical.
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  EXPECT_EQ(snap->base_rows(), kBaseRows + kTailRows);
  EXPECT_EQ(snap->tail_rows(), 0u);
  CheckSelectionAllStrategies(snap, Preds(), expected_sel, "post-compact");
  CheckAggAllStrategies(snap, Preds(), 0, 1, expected_agg,
                        "post-compact-agg");

  // Idempotent when nothing is pending.
  ASSERT_OK_AND_ASSIGN(uint64_t again, db_->CompactTable("t"));
  EXPECT_EQ(again, 0u);

  // And the cycle continues: more writes, another compaction.
  ASSERT_OK(db_->Insert("t", RandomRows(1500, 6)));
  ref_->Append(RandomRows(1500, 6));
  ASSERT_OK_AND_ASSIGN(uint64_t moved2, db_->CompactTable("t"));
  EXPECT_EQ(moved2, 1500u);
  ASSERT_OK_AND_ASSIGN(auto snap2, db_->SnapshotTable("t"));
  CheckSelectionAllStrategies(snap2, Preds(),
                              ref_->ExpectedSelection(Preds()),
                              "second-compact");
}

TEST_F(WriteScenarioTest, SnapshotTakenBeforeCompactionStaysValid) {
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  auto expected = ref_->ExpectedSelection(Preds());

  ASSERT_OK_AND_ASSIGN(uint64_t moved, db_->CompactTable("t"));
  EXPECT_EQ(moved, kTailRows);

  // The pre-compaction snapshot still resolves against the retired
  // generation and produces identical results.
  CheckSelectionAllStrategies(snap, Preds(), expected, "retired-gen");
}

TEST_F(WriteScenarioTest, TupleMoverCompactsInBackground) {
  sched::Scheduler scheduler({2});
  write::TupleMover::Options opts;
  opts.threshold_rows = 1u << 30;  // never trigger on its own: we force
  ASSERT_OK(db_->EnableTupleMover(&scheduler, opts));
  ASSERT_NE(db_->tuple_mover(), nullptr);

  auto expected = ref_->ExpectedSelection(Preds());
  ASSERT_OK(db_->tuple_mover()->ForceCompaction());
  EXPECT_EQ(db_->PendingWriteRows("t"), 0u);
  EXPECT_GE(db_->tuple_mover()->moves_completed(), 1u);

  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  EXPECT_EQ(snap->tail_rows(), 0u);
  CheckSelectionAllStrategies(snap, Preds(), expected, "mover");
  db_->DisableTupleMover();
}

TEST_F(WriteScenarioTest, ConcurrentWritersMoverAndScans) {
  // TSan-oriented: writers, the mover, and snapshot scans all racing. The
  // checked invariant is that every query succeeds and a quiesced fresh
  // snapshot agrees across strategies and worker counts.
  sched::Scheduler scheduler({4});
  write::TupleMover::Options opts;
  opts.threshold_rows = 2000;
  opts.poll_millis = 5;
  ASSERT_OK(db_->EnableTupleMover(&scheduler, opts));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t seed = 100;
    while (!stop.load()) {
      Status st = db_->Insert("t", RandomRows(200, seed++));
      ASSERT_TRUE(st.ok()) << st.ToString();
      if (seed % 7 == 0) {
        auto d = db_->DeleteWhere(
            "t", {{"c2", codec::Predicate::Equal(
                             static_cast<Value>(seed % 500))}});
        ASSERT_TRUE(d.ok()) << d.status().ToString();
      }
    }
  });

  for (int round = 0; round < 20; ++round) {
    auto snap_or = db_->SnapshotTable("t");
    ASSERT_TRUE(snap_or.ok());
    auto snap = *snap_or;
    std::vector<const codec::ColumnReader*> readers = BindColumns(*snap);
    plan::SelectionQuery query = MakeSelection(readers, Preds());
    plan::Strategy s = plan::kAllStrategies[round % 4];
    plan::PlanConfig config;
    config.num_workers = 1 + round % 4;
    config.snapshot = snap;
    std::vector<db::PendingQuery> pending;
    pending.push_back(db_->Submit(
        plan::PlanTemplate::Selection(query, s, config), &scheduler));
    for (auto& p : pending) {
      auto r = p.Wait();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  stop.store(true);
  writer.join();
  ASSERT_OK(db_->tuple_mover()->ForceCompaction());
  db_->DisableTupleMover();

  // Quiesced: all strategies/worker counts agree on a fresh snapshot.
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("t"));
  std::vector<const codec::ColumnReader*> readers = BindColumns(*snap);
  plan::SelectionQuery query = MakeSelection(readers, Preds());
  plan::PlanConfig base_config;
  base_config.snapshot = snap;
  auto baseline = db_->RunSelection(query, plan::Strategy::kLmParallel,
                                    base_config);
  ASSERT_TRUE(baseline.ok());
  for (plan::Strategy s : plan::kAllStrategies) {
    for (int workers : kWorkerCounts) {
      plan::PlanConfig config;
      config.num_workers = workers;
      config.snapshot = snap;
      auto r = db_->RunSelection(query, s, config);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->stats.checksum, baseline->stats.checksum)
          << StrategyName(s) << " workers=" << workers;
      EXPECT_EQ(r->stats.output_tuples, baseline->stats.output_tuples);
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases: empty tables, zero-match deletes, inserts into empty tables.
// ---------------------------------------------------------------------------

class WriteEdgeTest : public WriteTest {
 protected:
  void SetUp() override {
    OpenDb();
    MakeTable("e", {{"a", codec::Encoding::kUncompressed, {}},
                    {"b", codec::Encoding::kRle, {}}});
  }

  std::vector<codec::Predicate> Preds() const {
    return {codec::Predicate::LessThan(50), codec::Predicate::True()};
  }
};

TEST_F(WriteEdgeTest, ScanEmptyTableAllStrategies) {
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("e"));
  EXPECT_EQ(snap->total_rows(), 0u);
  CheckSelectionAllStrategies(snap, Preds(), {0, 0}, "empty-sel");
  CheckAggAllStrategies(snap, Preds(), 0, 1, {0, 0}, "empty-agg");
}

TEST_F(WriteEdgeTest, DeleteMatchingNothing) {
  // On the empty table...
  ASSERT_OK_AND_ASSIGN(uint64_t d0,
                       db_->DeleteWhere(
                           "e", {{"a", codec::Predicate::Equal(1)}}));
  EXPECT_EQ(d0, 0u);
  // ... and on a populated one, with a predicate no row matches.
  ASSERT_OK(db_->Insert("e", {{1, 10}, {2, 20}, {3, 30}}));
  ASSERT_OK_AND_ASSIGN(uint64_t d1,
                       db_->DeleteWhere(
                           "e", {{"a", codec::Predicate::Equal(999)}}));
  EXPECT_EQ(d1, 0u);
  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("e"));
  EXPECT_FALSE(snap->has_deletes());
  RefTable ref(2);
  ref.Append({{1, 10}, {2, 20}, {3, 30}});
  CheckSelectionAllStrategies(snap, Preds(), ref.ExpectedSelection(Preds()),
                              "nothing-deleted");
}

TEST_F(WriteEdgeTest, InsertIntoEmptyTableThenAggregate) {
  RefTable ref(2);
  std::vector<std::vector<Value>> rows;
  Random rng(9);
  for (int i = 0; i < 300; ++i) {
    rows.push_back({static_cast<Value>(rng.Uniform(100)),
                    static_cast<Value>(rng.Uniform(10))});
  }
  ASSERT_OK(db_->Insert("e", rows));
  ref.Append(rows);

  ASSERT_OK_AND_ASSIGN(auto snap, db_->SnapshotTable("e"));
  EXPECT_EQ(snap->base_rows(), 0u);
  EXPECT_EQ(snap->tail_rows(), 300u);
  CheckSelectionAllStrategies(snap, Preds(), ref.ExpectedSelection(Preds()),
                              "ws-only-sel");
  CheckAggAllStrategies(snap, Preds(), 1, 0,
                        ref.ExpectedGroupSum(Preds(), 1, 0), "ws-only-agg");

  // Compact the pure-tail table and re-check.
  ASSERT_OK_AND_ASSIGN(uint64_t moved, db_->CompactTable("e"));
  EXPECT_EQ(moved, 300u);
  ASSERT_OK_AND_ASSIGN(auto snap2, db_->SnapshotTable("e"));
  EXPECT_EQ(snap2->base_rows(), 300u);
  CheckSelectionAllStrategies(snap2, Preds(), ref.ExpectedSelection(Preds()),
                              "ws-only-compacted");
}

// ---------------------------------------------------------------------------
// SQL surface: INSERT INTO ... VALUES / DELETE FROM ... WHERE.
// ---------------------------------------------------------------------------

TEST_F(WriteTest, SqlInsertDeleteSelect) {
  OpenDb();
  std::vector<Value> a = testing::RunnyValues(1000, 50, 2.0, 11);
  std::vector<Value> b = testing::RunnyValues(1000, 10, 1.0, 12);
  MakeTable("s", {{"a", codec::Encoding::kUncompressed, a},
                  {"b", codec::Encoding::kRle, b}});
  RefTable ref(2);
  for (size_t i = 0; i < a.size(); ++i) ref.Append({{a[i], b[i]}});

  sql::Engine engine(db_.get());
  ASSERT_OK_AND_ASSIGN(
      sql::SqlResult ins,
      engine.Execute("INSERT INTO s VALUES (7, 3), (8, 4), (7, 5)"));
  EXPECT_TRUE(ins.is_write);
  EXPECT_EQ(ins.rows_affected, 3u);
  ref.Append({{7, 3}, {8, 4}, {7, 5}});

  ASSERT_OK_AND_ASSIGN(sql::SqlResult del,
                       engine.Execute("DELETE FROM s WHERE b = 4"));
  EXPECT_TRUE(del.is_write);
  EXPECT_EQ(del.rows_affected, ref.DeleteWhere(1, codec::Predicate::Equal(4)));

  auto expected =
      ref.ExpectedSelection({codec::Predicate::True(),
                             codec::Predicate::True()});
  for (plan::Strategy s : plan::kAllStrategies) {
    ASSERT_OK_AND_ASSIGN(sql::SqlResult sel,
                         engine.Execute("SELECT a, b FROM s", s));
    EXPECT_EQ(sel.stats.output_tuples, expected.first) << StrategyName(s);
    EXPECT_EQ(sel.stats.checksum, expected.second) << StrategyName(s);
  }

  // Aggregate over the mixed state (advisor-chosen strategy).
  std::map<Value, int64_t> sums;
  for (size_t i = 0; i < ref.rows(); ++i) {
    if (!ref.deleted[i]) sums[ref.cols[1][i]] += ref.cols[0][i];
  }
  ASSERT_OK_AND_ASSIGN(
      sql::SqlResult agg,
      engine.Execute("SELECT b, SUM(a) FROM s GROUP BY b"));
  ASSERT_EQ(agg.stats.output_tuples, sums.size());

  // DELETE FROM without WHERE empties the table.
  ASSERT_OK_AND_ASSIGN(sql::SqlResult wipe, engine.Execute("DELETE FROM s"));
  EXPECT_GT(wipe.rows_affected, 0u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult none, engine.Execute("SELECT a FROM s"));
  EXPECT_EQ(none.stats.output_tuples, 0u);

  // Arity errors are reported.
  auto bad = engine.Execute("INSERT INTO s VALUES (1)");
  EXPECT_FALSE(bad.ok());
}

TEST_F(WriteTest, SqlBatchSeesSubmitOrderSnapshots) {
  OpenDb();
  MakeTable("s2", {{"a", codec::Encoding::kUncompressed,
                    std::vector<Value>{1, 2, 3}}});
  sql::Engine engine(db_.get());
  sched::Scheduler scheduler({2});
  std::vector<sql::Engine::Pending> batch = engine.SubmitAll(
      {"SELECT a FROM s2", "INSERT INTO s2 VALUES (4), (5)",
       "SELECT a FROM s2", "DELETE FROM s2 WHERE a < 3", "SELECT a FROM s2"},
      &scheduler);
  ASSERT_EQ(batch.size(), 5u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult r0, batch[0].Wait());
  EXPECT_EQ(r0.stats.output_tuples, 3u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult r1, batch[1].Wait());
  EXPECT_EQ(r1.rows_affected, 2u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult r2, batch[2].Wait());
  EXPECT_EQ(r2.stats.output_tuples, 5u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult r3, batch[3].Wait());
  EXPECT_EQ(r3.rows_affected, 2u);
  ASSERT_OK_AND_ASSIGN(sql::SqlResult r4, batch[4].Wait());
  EXPECT_EQ(r4.stats.output_tuples, 3u);
}

}  // namespace
}  // namespace cstore
