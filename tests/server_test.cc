// SQL server front-end tests: the shared result encoder (JSON/CSV), the
// wire protocol end to end over real sockets, checksum-verified results
// under 8+ concurrent clients, admission control shedding on both pressure
// signals (in-flight cap and buffered-output cap) while admitted queries
// finish, headroom ordering across priority classes, and starvation
// freedom for low-priority traffic under a high-priority flood.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/connection.h"
#include "api/encode.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace cstore {
namespace {

using testing::TempDir;

// --- encoder units (no server needed) ---------------------------------------

TEST(ResultEncoderTest, JsonEscapingAndShape) {
  std::string out;
  api::AppendJsonString(&out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");

  api::ResultEncoder enc(api::Wire::kJson, {"x", "y"});
  exec::TupleChunk chunk(2);
  Value* row = chunk.AppendTuple(0);
  row[0] = 7;
  row[1] = -3;
  std::string doc = enc.Header() + enc.EncodeChunk(chunk) +
                    enc.Footer(1, 1.5);
  EXPECT_EQ(doc,
            "{\"columns\":[\"x\",\"y\"],\"rows\":[[7,-3]],"
            "\"rows_out\":1,\"wall_ms\":1.500}\n");
  EXPECT_STREQ(enc.content_type(), "application/json");
}

TEST(ResultEncoderTest, JsonFooterCarriesError) {
  api::ResultEncoder enc(api::Wire::kJson, {"x"});
  std::string doc = enc.Header() + enc.Footer(0, 0.25, "boom \"quoted\"");
  EXPECT_NE(doc.find("\"error\":\"boom \\\"quoted\\\"\""), std::string::npos)
      << doc;
}

TEST(ResultEncoderTest, CsvQuotingOnlyWhenNeeded) {
  std::string out;
  api::AppendCsvField(&out, "plain");
  out.push_back('|');
  api::AppendCsvField(&out, "has,comma");
  out.push_back('|');
  api::AppendCsvField(&out, "has\"quote");
  EXPECT_EQ(out, "plain|\"has,comma\"|\"has\"\"quote\"");

  api::ResultEncoder enc(api::Wire::kCsv, {"x", "y"});
  exec::TupleChunk chunk(2);
  Value* row = chunk.AppendTuple(0);
  row[0] = 1;
  row[1] = 2;
  EXPECT_EQ(enc.Header() + enc.EncodeChunk(chunk) + enc.Footer(1, 0.0),
            "x,y\n1,2\n");
  EXPECT_STREQ(enc.content_type(), "text/csv");
}

TEST(ResultEncoderTest, ParseWire) {
  ASSERT_TRUE(api::ParseWire("json").ok());
  ASSERT_TRUE(api::ParseWire("csv").ok());
  EXPECT_FALSE(api::ParseWire("xml").ok());
}

// --- server fixture ---------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    const size_t n = 60000;
    a_ = testing::SortedRunnyValues(n, 500, 8.0, 1);
    b_ = testing::RunnyValues(n, 7, 2.0, 2);
    ASSERT_OK(db_->CreateColumn("t.a", codec::Encoding::kRle, a_));
    ASSERT_OK(db_->CreateColumn("t.b", codec::Encoding::kUncompressed, b_));
    ASSERT_OK(db_->RegisterTable("t", {{"a", "t.a"}, {"b", "t.b"}}));
  }

  /// Registers big(x): a result large enough that streaming spans many
  /// chunks and genuinely blocks on a stalled reader.
  void MakeBigTable() {
    const size_t n = 400000;
    std::vector<Value> big(n);
    for (size_t i = 0; i < n; ++i) big[i] = static_cast<Value>(i % 1000);
    ASSERT_OK(
        db_->CreateColumn("big.x", codec::Encoding::kUncompressed, big));
    ASSERT_OK(db_->RegisterTable("big", {{"x", "big.x"}}));
  }

  /// Sum of all numeric fields in a CSV body (order-independent checksum)
  /// plus the data row count.
  static void CsvChecksum(const std::string& body, long long* sum,
                          uint64_t* rows) {
    *sum = 0;
    *rows = 0;
    size_t pos = body.find('\n');  // skip header
    ASSERT_NE(pos, std::string::npos);
    ++pos;
    while (pos < body.size()) {
      size_t eol = body.find('\n', pos);
      if (eol == std::string::npos) eol = body.size();
      const std::string line = body.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      ++*rows;
      size_t f = 0;
      while (f <= line.size()) {
        size_t comma = line.find(',', f);
        if (comma == std::string::npos) comma = line.size();
        *sum += std::atoll(line.c_str() + f);
        f = comma + 1;
      }
    }
  }

  /// Reference (rows, value-sum) for `sql` through a direct in-process
  /// session — what the wire result must reproduce exactly.
  void Reference(const std::string& sql, long long* sum, uint64_t* rows) {
    api::Connection conn(db_.get());
    auto r = conn.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *rows = r->tuples.num_tuples();
    *sum = 0;
    for (size_t i = 0; i < r->tuples.num_tuples(); ++i) {
      for (uint32_t c = 0; c < r->tuples.width(); ++c) {
        *sum += static_cast<long long>(r->tuples.value(i, c));
      }
    }
  }

  static int64_t InflightGauge() {
    return obs::MetricsRegistry::Global()
        .GetGauge("cstore_sched_inflight_queries")
        ->value();
  }

  /// Polls `pred` for up to ~5 s.
  template <typename Pred>
  static bool WaitFor(Pred pred) {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
  std::vector<Value> a_, b_;
};

TEST_F(ServerTest, RoutesAndEncodings) {
  server::Server::Options opts;
  opts.pool_workers = 2;
  server::Server srv(db_.get(), opts);
  ASSERT_OK(srv.Start());

  server::HttpClient client;
  ASSERT_OK(client.Connect("localhost", srv.port()));

  ASSERT_OK_AND_ASSIGN(server::HttpResponse health,
                       client.Get("/health"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  ASSERT_OK_AND_ASSIGN(server::HttpResponse metrics,
                       client.Get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("cstore_sched_inflight_queries"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("cstore_server_requests_total"),
            std::string::npos);

  // JSON and CSV agree with the direct session.
  const std::string sql = "SELECT a, b FROM t WHERE a < 250 AND b < 6";
  long long want_sum = 0;
  uint64_t want_rows = 0;
  Reference(sql, &want_sum, &want_rows);
  ASSERT_GT(want_rows, 0u);

  ASSERT_OK_AND_ASSIGN(server::HttpResponse csv,
                       client.Query(sql, "csv"));
  ASSERT_EQ(csv.status, 200);
  long long got_sum = 0;
  uint64_t got_rows = 0;
  CsvChecksum(csv.body, &got_sum, &got_rows);
  EXPECT_EQ(got_rows, want_rows);
  EXPECT_EQ(got_sum, want_sum);

  ASSERT_OK_AND_ASSIGN(server::HttpResponse json,
                       client.Query(sql, "json"));
  ASSERT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"rows_out\":" + std::to_string(want_rows)),
            std::string::npos)
      << json.body;

  // Writes and ops routes.
  ASSERT_OK_AND_ASSIGN(
      server::HttpResponse ins,
      client.Query("INSERT INTO t VALUES (1, 2)", "json"));
  EXPECT_EQ(ins.status, 200);
  EXPECT_NE(ins.body.find("\"rows_out\":1"), std::string::npos) << ins.body;

  ASSERT_OK_AND_ASSIGN(server::HttpResponse log,
                       client.Get("/log?format=csv"));
  EXPECT_EQ(log.status, 200);
  EXPECT_NE(log.body.find("query_id"), std::string::npos);

  ASSERT_OK_AND_ASSIGN(server::HttpResponse queries,
                       client.Get("/queries?format=csv"));
  EXPECT_EQ(queries.status, 200);

  // Error paths: bad SQL = 400, unknown route = 404, bad params = 400.
  ASSERT_OK_AND_ASSIGN(server::HttpResponse bad,
                       client.Query("garbage sql"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("\"error\""), std::string::npos);
  ASSERT_OK_AND_ASSIGN(server::HttpResponse missing,
                       client.Get("/nosuch"));
  EXPECT_EQ(missing.status, 404);
  ASSERT_OK_AND_ASSIGN(server::HttpResponse badfmt,
                       client.Query("SELECT a FROM t", "xml"));
  EXPECT_EQ(badfmt.status, 400);

  srv.Stop();
}

TEST_F(ServerTest, EightConcurrentClientsChecksumVerified) {
  server::Server::Options opts;
  opts.pool_workers = 4;
  server::Server srv(db_.get(), opts);
  ASSERT_OK(srv.Start());

  const std::vector<std::string> sqls = {
      "SELECT a, b FROM t WHERE a < 250 AND b < 6",
      "SELECT a, SUM(b) FROM t WHERE b < 6 GROUP BY a",
      "SELECT COUNT(b) FROM t WHERE a < 100",
  };
  std::vector<long long> want_sum(sqls.size());
  std::vector<uint64_t> want_rows(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    Reference(sqls[i], &want_sum[i], &want_rows[i]);
    ASSERT_GT(want_rows[i], 0u) << sqls[i];
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  // Collected per thread, verified on the main thread (gtest assertions
  // are not thread-safe).
  struct Got {
    bool transport_ok = true;
    int bad_status = 0;
    int mismatches = 0;
  };
  std::vector<Got> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      server::HttpClient client;
      if (!client.Connect("localhost", srv.port()).ok()) {
        got[cidx].transport_ok = false;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < sqls.size(); ++i) {
          auto r = client.Query(sqls[i], "csv");
          if (!r.ok()) {
            got[cidx].transport_ok = false;
            return;
          }
          if (r->status != 200) {
            got[cidx].bad_status = r->status;
            continue;
          }
          long long sum = 0;
          uint64_t rows = 0;
          CsvChecksum(r->body, &sum, &rows);
          if (sum != want_sum[i] || rows != want_rows[i]) {
            ++got[cidx].mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(got[c].transport_ok) << "client " << c;
    EXPECT_EQ(got[c].bad_status, 0) << "client " << c;
    EXPECT_EQ(got[c].mismatches, 0) << "client " << c;
  }
  srv.Stop();
}

TEST_F(ServerTest, InflightCapShedsByPriorityClassWhileAdmittedFinish) {
  MakeBigTable();
  server::Server::Options opts;
  opts.pool_workers = 2;
  opts.admission.max_inflight = 2;
  opts.admission.max_buffered_bytes = 0;  // isolate the in-flight signal
  server::Server srv(db_.get(), opts);
  ASSERT_OK(srv.Start());

  // Pin two queries in flight on the server's scheduler: undrained streams
  // with a 1-chunk queue block their producers indefinitely.
  api::Connection pin(db_.get(), srv.scheduler());
  api::Connection::Settings settings;
  settings.stream_queue_chunks = 1;
  pin.set_settings(settings);
  ASSERT_OK_AND_ASSIGN(api::RowCursor held1,
                       pin.Stream("SELECT x FROM big"));
  ASSERT_OK_AND_ASSIGN(api::RowCursor held2,
                       pin.Stream("SELECT x FROM big"));
  ASSERT_TRUE(WaitFor([] { return InflightGauge() >= 2; }));

  server::HttpClient client;
  ASSERT_OK(client.Connect("localhost", srv.port()));
  // At the full cap every class sheds, with a useful message and
  // Retry-After. Shedding is a pure gauge read — it works even though
  // every pool worker is currently blocked on the stalled streams (that
  // saturation is exactly what the cap detects).
  for (const char* cls : {"low", "normal", "high"}) {
    ASSERT_OK_AND_ASSIGN(
        server::HttpResponse r,
        client.Query("SELECT COUNT(b) FROM t WHERE a < 100", "json", cls));
    EXPECT_EQ(r.status, 503) << cls;
    EXPECT_NE(r.body.find("overloaded"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("in flight"), std::string::npos) << r.body;
    EXPECT_EQ(r.headers["retry-after"], "1") << cls;
  }

  // Admitted queries finish while load sheds: drain the first pinned
  // stream to completion while the second is dropped (cancelled). These
  // must run concurrently — a blocked worker can be parked on either
  // queue, so one stream's progress can require the other's release.
  std::atomic<uint64_t> drained_rows{0};
  std::thread drainer([&] {
    auto drained = held1.FetchAll();
    if (drained.ok()) {
      drained_rows.store(drained->tuples.num_tuples(),
                         std::memory_order_relaxed);
    }
  });
  { api::RowCursor drop = std::move(held2); }
  drainer.join();
  EXPECT_EQ(drained_rows.load(std::memory_order_relaxed), 400000u);

  // Saturation over: all classes are admitted again.
  ASSERT_TRUE(WaitFor([] { return InflightGauge() == 0; }));
  ASSERT_OK_AND_ASSIGN(
      server::HttpResponse after,
      client.Query("SELECT COUNT(b) FROM t WHERE a < 100", "json", "low"));
  EXPECT_EQ(after.status, 200) << after.body;
  srv.Stop();
}

TEST_F(ServerTest, OutputByteCapShedsOnStalledReader) {
  MakeBigTable();
  server::Server::Options opts;
  opts.pool_workers = 2;
  opts.admission.max_inflight = 0;  // isolate the byte signal
  opts.admission.max_buffered_bytes = 64 * 1024;
  server::Server srv(db_.get(), opts);
  ASSERT_OK(srv.Start());

  // A raw socket that sends the request and never reads the response: the
  // server's writer blocks once the TCP buffers fill, its ChunkQueue backs
  // up, and the shared byte gauge climbs past the cap.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(srv.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(stalled, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  const char* req =
      "GET /query?q=SELECT+x+FROM+big&format=csv HTTP/1.1\r\n"
      "Host: t\r\n\r\n";
  ASSERT_EQ(::send(stalled, req, std::strlen(req), MSG_NOSIGNAL),
            static_cast<ssize_t>(std::strlen(req)));

  ASSERT_TRUE(WaitFor([&] {
    return srv.buffered_output_bytes() >= 64 * 1024;
  })) << "stalled reader never backed up the byte gauge";

  server::HttpClient client;
  ASSERT_OK(client.Connect("localhost", srv.port()));
  ASSERT_OK_AND_ASSIGN(
      server::HttpResponse shed,
      client.Query("SELECT COUNT(b) FROM t WHERE a < 100", "json", "high"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("bytes buffered"), std::string::npos)
      << shed.body;

  // Closing the stalled client cancels its query (disconnect detection)
  // and releases the buffered bytes; traffic is admitted again.
  ::close(stalled);
  ASSERT_TRUE(WaitFor([&] { return srv.buffered_output_bytes() == 0; }));
  ASSERT_OK_AND_ASSIGN(
      server::HttpResponse after,
      client.Query("SELECT COUNT(b) FROM t WHERE a < 100", "json", "high"));
  EXPECT_EQ(after.status, 200) << after.body;
  srv.Stop();
}

TEST_F(ServerTest, LowPriorityNotStarvedByHighPriorityFlood) {
  server::Server::Options opts;
  opts.pool_workers = 2;
  server::Server srv(db_.get(), opts);
  ASSERT_OK(srv.Start());

  std::atomic<bool> stop{false};
  std::vector<std::thread> flood;
  for (int t = 0; t < 4; ++t) {
    flood.emplace_back([&] {
      server::HttpClient client;
      if (!client.Connect("localhost", srv.port()).ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = client.Query("SELECT a, SUM(b) FROM t GROUP BY a", "csv",
                              "high");
        if (!r.ok()) return;
      }
    });
  }

  // The low-priority query must land (weighted round-robin always deals it
  // at least one morsel claim per rotation) while the flood runs.
  long long want_sum = 0;
  uint64_t want_rows = 0;
  Reference("SELECT COUNT(b) FROM t WHERE a < 100", &want_sum, &want_rows);
  server::HttpClient low;
  ASSERT_OK(low.Connect("localhost", srv.port()));
  for (int i = 0; i < 3; ++i) {
    auto r = low.Query("SELECT COUNT(b) FROM t WHERE a < 100", "csv", "low");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200);
    long long sum = 0;
    uint64_t rows = 0;
    CsvChecksum(r->body, &sum, &rows);
    EXPECT_EQ(sum, want_sum);
    EXPECT_EQ(rows, want_rows);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : flood) t.join();
  srv.Stop();
}

TEST_F(ServerTest, DispatchPolicyKnobKeepsResultsIdentical) {
  // Same queries under each dispatch policy, over the wire: identical
  // checksums (the policy reorders work, never results).
  const std::string sql = "SELECT a, b FROM t WHERE a < 250 AND b < 6";
  long long want_sum = 0;
  uint64_t want_rows = 0;
  Reference(sql, &want_sum, &want_rows);
  const sched::DispatchPolicy policies[] = {
      sched::DispatchPolicy::kWeightedRoundRobin,
      sched::DispatchPolicy::kFifoPriority,
      sched::DispatchPolicy::kShortestRemaining,
  };
  for (sched::DispatchPolicy policy : policies) {
    server::Server::Options opts;
    opts.pool_workers = 2;
    opts.dispatch = policy;
    server::Server srv(db_.get(), opts);
    ASSERT_OK(srv.Start());
    server::HttpClient client;
    ASSERT_OK(client.Connect("localhost", srv.port()));
    ASSERT_OK_AND_ASSIGN(server::HttpResponse r, client.Query(sql, "csv"));
    ASSERT_EQ(r.status, 200);
    long long sum = 0;
    uint64_t rows = 0;
    CsvChecksum(r.body, &sum, &rows);
    EXPECT_EQ(sum, want_sum) << sched::DispatchPolicyName(policy);
    EXPECT_EQ(rows, want_rows) << sched::DispatchPolicyName(policy);
    srv.Stop();
  }
}

TEST(AdmissionTest, HeadroomFractionsOrderClasses) {
  std::atomic<int64_t> bytes{0};
  server::AdmissionController::Options opts;
  opts.max_inflight = 100;
  opts.max_buffered_bytes = 1000;
  server::AdmissionController ctl(opts, &bytes);
  // Byte pressure at 60%: low (cap 500) sheds, normal (cap 750) and high
  // (cap 1000) admit. There are no in-flight queries in this test.
  bytes.store(600);
  EXPECT_TRUE(ctl.Admit(server::PriorityClass::kLow).IsUnavailable());
  EXPECT_OK(ctl.Admit(server::PriorityClass::kNormal));
  EXPECT_OK(ctl.Admit(server::PriorityClass::kHigh));
  bytes.store(800);
  EXPECT_TRUE(ctl.Admit(server::PriorityClass::kNormal).IsUnavailable());
  EXPECT_OK(ctl.Admit(server::PriorityClass::kHigh));
  bytes.store(1000);
  EXPECT_TRUE(ctl.Admit(server::PriorityClass::kHigh).IsUnavailable());
  bytes.store(0);

  // The in-flight signal orders classes the same way. Drive the scheduler
  // gauge directly (nothing else runs queries here); restore it after.
  obs::Gauge* inflight = obs::MetricsRegistry::Global().GetGauge(
      "cstore_sched_inflight_queries");
  inflight->Set(60);  // 60% of max_inflight = 100
  Status low = ctl.Admit(server::PriorityClass::kLow);
  EXPECT_TRUE(low.IsUnavailable());
  EXPECT_NE(low.ToString().find("in flight"), std::string::npos)
      << low.ToString();
  EXPECT_OK(ctl.Admit(server::PriorityClass::kNormal));
  EXPECT_OK(ctl.Admit(server::PriorityClass::kHigh));
  inflight->Set(80);
  EXPECT_TRUE(ctl.Admit(server::PriorityClass::kNormal).IsUnavailable());
  EXPECT_OK(ctl.Admit(server::PriorityClass::kHigh));
  inflight->Set(100);
  EXPECT_TRUE(ctl.Admit(server::PriorityClass::kHigh).IsUnavailable());
  inflight->Set(0);

  // Zero caps disable the checks entirely.
  server::AdmissionController off(server::AdmissionController::Options{0, 0},
                                  &bytes);
  EXPECT_OK(off.Admit(server::PriorityClass::kLow));
}

}  // namespace
}  // namespace cstore
