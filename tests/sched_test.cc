// Shared-pool scheduler: concurrent mixed-query execution tests.
//
// The contract under test (src/sched/scheduler.h): K concurrent queries of
// mixed shapes (selections, aggregations, joins) and mixed materialization
// strategies, sharing one worker pool, each produce output_tuples and an
// order-independent checksum bit-identical to their serial (workers=1)
// runs; every ticket completes even when queries far outnumber workers;
// per-query ExecStats are not cross-contaminated by concurrent neighbors;
// and errors surface through the failing query's ticket without disturbing
// the rest of the batch.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/morsel_source.h"
#include "plan/parallel.h"
#include "sched/scheduler.h"
#include "sql/engine.h"
#include "test_util.h"
#include "tpch/loader.h"

namespace cstore {
namespace {

using plan::Strategy;
using testing::TempDir;

// SF 0.1 ≈ 600 K lineitem rows ≈ 10 chunk windows: enough morsels that a
// 4-worker pool genuinely interleaves queries.
constexpr double kScaleFactor = 0.1;

/// One database shared by the whole suite (loading dominates test time).
class SchedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir();
    db::Database::Options opts;
    opts.dir = dir_->path();
    opts.pool_frames = 4096;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value().release();
    auto li = tpch::LoadLineitem(db_, kScaleFactor);
    ASSERT_TRUE(li.ok()) << li.status().ToString();
    li_ = new tpch::LineitemColumns(*li);
    auto jc = tpch::LoadJoinTables(db_, kScaleFactor);
    ASSERT_TRUE(jc.ok()) << jc.status().ToString();
    jc_ = new tpch::JoinColumns(*jc);
  }

  static void TearDownTestSuite() {
    delete jc_;
    delete li_;
    delete db_;
    delete dir_;
    jc_ = nullptr;
    li_ = nullptr;
    db_ = nullptr;
    dir_ = nullptr;
  }

  static plan::SelectionQuery MidSelectivityQuery() {
    plan::SelectionQuery q;
    Value mid = (li_->shipdate->meta().min_value +
                 li_->shipdate->meta().max_value) /
                2;
    q.columns.push_back({li_->shipdate, codec::Predicate::LessThan(mid)});
    q.columns.push_back({li_->quantity, codec::Predicate::LessThan(30)});
    return q;
  }

  /// The mixed batch: selections and aggregations across all four
  /// strategies plus a join — every query shape the engine has.
  static std::vector<plan::PlanTemplate> MixedTemplates() {
    std::vector<plan::PlanTemplate> templates;
    plan::SelectionQuery sel = MidSelectivityQuery();
    plan::AggQuery agg;
    agg.selection = sel;
    agg.group_index = 0;
    agg.agg_index = 1;
    agg.func = exec::AggFunc::kSum;
    plan::JoinQuery join;
    join.left_key = jc_->orders_custkey;
    join.left_pred = codec::Predicate::LessThan(
        (jc_->orders_custkey->meta().min_value +
         jc_->orders_custkey->meta().max_value) /
        2);
    join.left_payload = jc_->orders_shipdate;
    join.right_key = jc_->customer_custkey;
    join.right_payload = jc_->customer_nationcode;
    for (Strategy s : plan::kAllStrategies) {
      templates.push_back(plan::PlanTemplate::Selection(sel, s));
    }
    for (Strategy s : plan::kAllStrategies) {
      templates.push_back(plan::PlanTemplate::Agg(agg, s));
    }
    templates.push_back(plan::PlanTemplate::Join(
        join, exec::JoinRightMode::kMaterialized));
    return templates;
  }

  /// Serial (workers=1) ground truth for a template.
  static plan::RunStats SerialRun(plan::PlanTemplate tmpl) {
    tmpl.config.num_workers = 1;
    plan::RunStats stats;
    Status st = plan::ExecuteParallel(tmpl, db_->pool(), &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return stats;
  }

  static TempDir* dir_;
  static db::Database* db_;
  static tpch::LineitemColumns* li_;
  static tpch::JoinColumns* jc_;
};

TempDir* SchedTest::dir_ = nullptr;
db::Database* SchedTest::db_ = nullptr;
tpch::LineitemColumns* SchedTest::li_ = nullptr;
tpch::JoinColumns* SchedTest::jc_ = nullptr;

TEST_F(SchedTest, ConcurrentMixedQueriesMatchSerialRuns) {
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  std::vector<plan::RunStats> serial;
  serial.reserve(templates.size());
  for (const plan::PlanTemplate& tmpl : templates) {
    serial.push_back(SerialRun(tmpl));
    EXPECT_GT(serial.back().output_tuples, 0u);
  }

  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  std::vector<db::PendingQuery> pending;
  pending.reserve(templates.size());
  for (const plan::PlanTemplate& tmpl : templates) {
    pending.push_back(db_->Submit(tmpl, &scheduler));
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(db::QueryResult result, pending[i].Wait());
    EXPECT_EQ(result.stats.checksum, serial[i].checksum) << "query " << i;
    EXPECT_EQ(result.stats.output_tuples, serial[i].output_tuples)
        << "query " << i;
    EXPECT_EQ(result.tuples.num_tuples(), serial[i].output_tuples)
        << "query " << i;
  }
}

TEST_F(SchedTest, TicketsCompleteUnderQueuePressure) {
  // Far more queries than workers: 27 queries on a 2-worker pool.
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  std::vector<uint64_t> checksums;
  for (const plan::PlanTemplate& tmpl : templates) {
    checksums.push_back(SerialRun(tmpl).checksum);
  }

  sched::Scheduler::Options opts;
  opts.num_workers = 2;
  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  const int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    for (const plan::PlanTemplate& tmpl : templates) {
      tickets.push_back(scheduler.Submit(tmpl, db_->pool()));
    }
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const sched::ExecResult& r = tickets[i].Wait();
    ASSERT_TRUE(r.status.ok()) << "query " << i << ": "
                               << r.status.ToString();
    EXPECT_EQ(r.stats.checksum, checksums[i % checksums.size()])
        << "query " << i;
  }
}

TEST_F(SchedTest, ExecStatsNotCrossContaminated) {
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  sched::Scheduler::Options opts;
  opts.num_workers = 4;

  // Solo run of query 0 through its own pool: the per-query baseline with
  // identical morsel sizing (same pool width → same auto-sized morsels).
  exec::ExecStats solo;
  {
    sched::Scheduler scheduler(opts);
    const sched::ExecResult& r =
        scheduler.Submit(templates[0], db_->pool()).Wait();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    solo = r.stats.exec;
  }

  // The same query racing the whole mixed batch on a shared pool.
  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  for (const plan::PlanTemplate& tmpl : templates) {
    tickets.push_back(scheduler.Submit(tmpl, db_->pool()));
  }
  const sched::ExecResult& r = tickets[0].Wait();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.stats.exec.blocks_fetched, solo.blocks_fetched);
  EXPECT_EQ(r.stats.exec.blocks_skipped, solo.blocks_skipped);
  EXPECT_EQ(r.stats.exec.predicate_evals, solo.predicate_evals);
  EXPECT_EQ(r.stats.exec.values_gathered, solo.values_gathered);
  EXPECT_EQ(r.stats.exec.tuples_constructed, solo.tuples_constructed);
  EXPECT_EQ(r.stats.exec.position_ands, solo.position_ands);
  for (sched::QueryTicket& t : tickets) {
    EXPECT_TRUE(t.Wait().status.ok());
  }
}

TEST_F(SchedTest, IoStatsAttributedPerQueryNotPerPool) {
  // RunStats::io must be the query's own buffer-pool traffic, not a
  // snapshot of the shared counters: total block requests (hits +
  // physical reads) per query are deterministic — the same windows fetch
  // the same blocks — so a query racing a noisy batch must report exactly
  // what it reports running alone.
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  sched::Scheduler::Options opts;
  opts.num_workers = 4;

  uint64_t solo_requests = 0;
  {
    sched::Scheduler scheduler(opts);
    const sched::ExecResult& r =
        scheduler.Submit(templates[0], db_->pool()).Wait();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    solo_requests = r.stats.io.cache_hits + r.stats.io.physical_reads;
  }
  ASSERT_GT(solo_requests, 0u);

  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  for (const plan::PlanTemplate& tmpl : templates) {
    tickets.push_back(scheduler.Submit(tmpl, db_->pool()));
  }
  const sched::ExecResult& r = tickets[0].Wait();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.stats.io.cache_hits + r.stats.io.physical_reads,
            solo_requests);
  // The neighbors collectively touched far more blocks than query 0; with
  // pool-snapshot attribution their traffic would have bled into it.
  uint64_t batch_requests = 0;
  for (sched::QueryTicket& t : tickets) {
    const sched::ExecResult& tr = t.Wait();
    EXPECT_TRUE(tr.status.ok());
    batch_requests += tr.stats.io.cache_hits + tr.stats.io.physical_reads;
  }
  EXPECT_GT(batch_requests, solo_requests);
}

TEST_F(SchedTest, PriorityQueriesCompleteAndStayCorrect) {
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  std::vector<uint64_t> checksums;
  for (const plan::PlanTemplate& tmpl : templates) {
    checksums.push_back(SerialRun(tmpl).checksum);
  }
  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  for (size_t i = 0; i < templates.size(); ++i) {
    // Alternate priorities 1..3: correctness must be priority-independent.
    tickets.push_back(scheduler.Submit(templates[i], db_->pool(), nullptr,
                                       1 + static_cast<int>(i % 3)));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const sched::ExecResult& r = tickets[i].Wait();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.stats.checksum, checksums[i]) << "query " << i;
  }
}

TEST_F(SchedTest, InstantiationErrorSurfacesOnTicketOnly) {
  // LM-pipelined over a bit-vector column beyond the first is NotSupported
  // (Section 4.1) — every morsel's Instantiate fails.
  plan::SelectionQuery bad;
  bad.columns.push_back(
      {li_->shipdate, codec::Predicate::LessThan(li_->max_shipdate)});
  bad.columns.push_back({li_->linenum_bv, codec::Predicate::LessThan(5)});
  plan::PlanTemplate bad_tmpl =
      plan::PlanTemplate::Selection(bad, Strategy::kLmPipelined);
  plan::PlanTemplate good_tmpl = MixedTemplates()[0];
  uint64_t good_checksum = SerialRun(good_tmpl).checksum;

  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  sched::QueryTicket bad_ticket = scheduler.Submit(bad_tmpl, db_->pool());
  sched::QueryTicket good_ticket = scheduler.Submit(good_tmpl, db_->pool());
  EXPECT_FALSE(bad_ticket.Wait().status.ok());
  const sched::ExecResult& good = good_ticket.Wait();
  ASSERT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_EQ(good.stats.checksum, good_checksum);
}

TEST_F(SchedTest, JoinBuildBarrierGatesProbeMorsels) {
  // A join on the shared pool runs its serial build as a phase-one task;
  // probe morsels (gated on the barrier) then interleave with a concurrent
  // scan. Results must match the serial run exactly, and neighbors must be
  // undisturbed.
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  plan::PlanTemplate join_tmpl = templates.back();  // the join
  join_tmpl.config.morsel_positions = kChunkPositions;
  plan::PlanTemplate scan_tmpl = templates.front();
  uint64_t join_checksum = SerialRun(join_tmpl).checksum;
  uint64_t scan_checksum = SerialRun(scan_tmpl).checksum;

  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(scheduler.Submit(join_tmpl, db_->pool()));
    tickets.push_back(scheduler.Submit(scan_tmpl, db_->pool()));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const sched::ExecResult r = tickets[i].Wait();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.stats.checksum,
              i % 2 == 0 ? join_checksum : scan_checksum)
        << (i % 2 == 0 ? "join" : "scan") << " #" << i;
  }
}

TEST_F(SchedTest, JoinBuildFailureSurfacesOnTicket) {
  // Mismatched column lengths fail in the build phase (the first task the
  // barrier dispatches); the error must cancel the probe morsels and
  // resolve the ticket, leaving a concurrent good query untouched.
  plan::JoinQuery bad;
  bad.left_key = jc_->orders_custkey;
  bad.left_pred = codec::Predicate::True();
  bad.left_payload = jc_->orders_shipdate;
  bad.right_key = jc_->customer_custkey;
  bad.right_payload = jc_->orders_shipdate;  // wrong length vs right_key
  plan::PlanTemplate bad_tmpl =
      plan::PlanTemplate::Join(bad, exec::JoinRightMode::kMaterialized);
  plan::PlanTemplate good_tmpl = MixedTemplates()[0];
  uint64_t good_checksum = SerialRun(good_tmpl).checksum;

  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  sched::QueryTicket bad_ticket = scheduler.Submit(bad_tmpl, db_->pool());
  sched::QueryTicket good_ticket = scheduler.Submit(good_tmpl, db_->pool());
  EXPECT_FALSE(bad_ticket.Wait().status.ok());
  const sched::ExecResult good = good_ticket.Wait();
  ASSERT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_EQ(good.stats.checksum, good_checksum);
}

TEST_F(SchedTest, SchedulerDestructorDrainsUnwaitedTickets) {
  plan::PlanTemplate tmpl = MixedTemplates()[0];
  uint64_t checksum = SerialRun(tmpl).checksum;
  sched::QueryTicket abandoned;
  {
    sched::Scheduler::Options opts;
    opts.num_workers = 2;
    sched::Scheduler scheduler(opts);
    abandoned = scheduler.Submit(tmpl, db_->pool());
    // Destructor runs with the query possibly still in flight.
  }
  const sched::ExecResult& r = abandoned.Wait();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.stats.checksum, checksum);
}

TEST_F(SchedTest, EngineSubmitAllMatchesSynchronousExecute) {
  sql::Engine engine(db_);
  const std::vector<std::string> sqls = {
      "SELECT shipdate, quantity FROM lineitem WHERE quantity < 30",
      "SELECT shipdate, SUM(quantity) FROM lineitem WHERE quantity < 40 "
      "GROUP BY shipdate",
      "SELECT SUM(quantity) FROM lineitem WHERE linenum < 4",
      "SELECT bogus FROM nowhere",  // binds must fail, ticket must drain
  };
  std::vector<Result<sql::SqlResult>> serial;
  for (const std::string& sql : sqls) {
    serial.push_back(engine.Execute(sql));
  }

  sched::Scheduler::Options opts;
  opts.num_workers = 4;
  sched::Scheduler scheduler(opts);
  std::vector<sql::Engine::Pending> pending =
      engine.SubmitAll(sqls, &scheduler);
  ASSERT_EQ(pending.size(), sqls.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    Result<sql::SqlResult> batch = pending[i].Wait();
    ASSERT_EQ(batch.ok(), serial[i].ok()) << sqls[i];
    if (!batch.ok()) continue;
    EXPECT_EQ(batch->stats.checksum, serial[i]->stats.checksum) << sqls[i];
    EXPECT_EQ(batch->stats.output_tuples, serial[i]->stats.output_tuples)
        << sqls[i];
    EXPECT_EQ(batch->column_names, serial[i]->column_names) << sqls[i];
    EXPECT_EQ(batch->tuples.num_tuples(), serial[i]->tuples.num_tuples())
        << sqls[i];
  }
}

TEST_F(SchedTest, DispatchPoliciesBitIdenticalToRoundRobin) {
  // The dispatch policy reorders work; it must never change results. Every
  // policy runs the same mixed batch (varying priorities, so FIFO-priority
  // actually reorders) and must reproduce the serial checksums exactly.
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  std::vector<plan::RunStats> serial;
  serial.reserve(templates.size());
  for (const plan::PlanTemplate& tmpl : templates) {
    serial.push_back(SerialRun(tmpl));
  }
  const sched::DispatchPolicy policies[] = {
      sched::DispatchPolicy::kWeightedRoundRobin,
      sched::DispatchPolicy::kFifoPriority,
      sched::DispatchPolicy::kShortestRemaining,
  };
  for (sched::DispatchPolicy policy : policies) {
    sched::Scheduler::Options opts;
    opts.num_workers = 4;
    opts.dispatch = policy;
    sched::Scheduler scheduler(opts);
    EXPECT_EQ(scheduler.dispatch_policy(), policy);
    std::vector<sched::QueryTicket> tickets;
    for (size_t i = 0; i < templates.size(); ++i) {
      tickets.push_back(scheduler.Submit(templates[i], db_->pool(), nullptr,
                                         /*priority=*/1 + (i % 3)));
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      const sched::ExecResult r = tickets[i].Wait();
      ASSERT_TRUE(r.status.ok())
          << sched::DispatchPolicyName(policy) << " query " << i << ": "
          << r.status.ToString();
      EXPECT_EQ(r.stats.checksum, serial[i].checksum)
          << sched::DispatchPolicyName(policy) << " query " << i;
      EXPECT_EQ(r.stats.output_tuples, serial[i].output_tuples)
          << sched::DispatchPolicyName(policy) << " query " << i;
    }
  }
}

TEST_F(SchedTest, DispatchPolicySwitchesSafelyMidBatch) {
  // The server flips the knob at runtime; queries in flight across the
  // switch must complete correctly.
  std::vector<plan::PlanTemplate> templates = MixedTemplates();
  std::vector<uint64_t> checksums;
  for (const plan::PlanTemplate& tmpl : templates) {
    checksums.push_back(SerialRun(tmpl).checksum);
  }
  sched::Scheduler::Options opts;
  opts.num_workers = 2;
  sched::Scheduler scheduler(opts);
  std::vector<sched::QueryTicket> tickets;
  for (const plan::PlanTemplate& tmpl : templates) {
    tickets.push_back(scheduler.Submit(tmpl, db_->pool()));
  }
  scheduler.set_dispatch_policy(sched::DispatchPolicy::kShortestRemaining);
  for (const plan::PlanTemplate& tmpl : templates) {
    tickets.push_back(scheduler.Submit(tmpl, db_->pool()));
  }
  scheduler.set_dispatch_policy(sched::DispatchPolicy::kFifoPriority);
  for (size_t i = 0; i < tickets.size(); ++i) {
    const sched::ExecResult r = tickets[i].Wait();
    ASSERT_TRUE(r.status.ok()) << "query " << i;
    EXPECT_EQ(r.stats.checksum, checksums[i % checksums.size()])
        << "query " << i;
  }
}

TEST(DispatchPolicyTest, ParseAndNameRoundTrip) {
  for (const char* name : {"rr", "fifo", "srw"}) {
    auto p = sched::ParseDispatchPolicy(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_STREQ(sched::DispatchPolicyName(*p), name);
  }
  EXPECT_FALSE(sched::ParseDispatchPolicy("sjf").ok());
}

TEST(AutoMorselTest, SmallTablesGetMoreThanOneMorsel) {
  // 10 windows, 4 workers: the old default (16-window morsels) clamped this
  // to a single morsel — one effective worker. Auto-sizing must hand out at
  // least min(4 * workers, num_windows) morsels.
  const Position total = 10 * kChunkPositions;
  Position morsel = exec::AutoMorselPositions(total, 4);
  EXPECT_EQ(morsel, kChunkPositions);
  EXPECT_EQ(exec::MorselSource(total, morsel).num_morsels(), 10u);
}

TEST(AutoMorselTest, LargeTablesKeepTheDefaultCap) {
  // 4 M windows / 2 workers: target would exceed the default morsel size;
  // cap at the default so per-morsel overhead stays amortized.
  const Position total = 4096 * kChunkPositions;
  EXPECT_EQ(exec::AutoMorselPositions(total, 2),
            exec::kDefaultMorselPositions);
}

TEST(AutoMorselTest, DegenerateInputsFallBackToDefault) {
  EXPECT_EQ(exec::AutoMorselPositions(0, 4), exec::kDefaultMorselPositions);
  EXPECT_EQ(exec::AutoMorselPositions(10 * kChunkPositions, 0),
            exec::kDefaultMorselPositions);
}

}  // namespace
}  // namespace cstore
