// Database-facade tests: end-to-end open/load/query, catalog behaviour,
// persistence across re-opens, and the executor's RunStats integrity.

#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using plan::Strategy;
using testing::TempDir;

TEST(DatabaseTest, OpenCreatesDirectory) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path() + "/nested";
  auto db = db::Database::Open(opts);
  ASSERT_TRUE(db.ok());
}

TEST(DatabaseTest, CreateAndQueryColumn) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));

  std::vector<Value> vals = testing::RunnyValues(50000, 100, 1.0, 1);
  ASSERT_OK(db->CreateColumn("col", Encoding::kUncompressed, vals));
  EXPECT_TRUE(db->HasColumn("col"));
  EXPECT_FALSE(db->HasColumn("other"));

  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* reader,
                       db->GetColumn("col"));
  EXPECT_EQ(reader->num_values(), vals.size());

  plan::SelectionQuery q;
  q.columns.push_back({reader, Predicate::LessThan(10)});
  ASSERT_OK_AND_ASSIGN(db::QueryResult result,
                       db->RunSelection(q, Strategy::kLmParallel));
  EXPECT_EQ(result.stats.output_tuples,
            testing::NaiveMatches(vals, Predicate::LessThan(10)).size());
  EXPECT_EQ(result.tuples.num_tuples(), result.stats.output_tuples);
  EXPECT_GT(result.stats.wall_micros, 0.0);
}

TEST(DatabaseTest, GetMissingColumnFails) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  EXPECT_FALSE(db->GetColumn("ghost").ok());
}

TEST(DatabaseTest, ColumnsPersistAcrossReopen) {
  TempDir dir;
  std::vector<Value> vals = {5, 4, 3, 2, 1};
  {
    db::Database::Options opts;
    opts.dir = dir.path();
    ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
    ASSERT_OK(db->CreateColumn("persisted", Encoding::kRle, vals));
  }
  {
    db::Database::Options opts;
    opts.dir = dir.path();
    ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
    EXPECT_TRUE(db->HasColumn("persisted"));
    ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* reader,
                         db->GetColumn("persisted"));
    EXPECT_EQ(reader->num_values(), 5u);
    ASSERT_OK_AND_ASSIGN(Value v, reader->ValueAt(0));
    EXPECT_EQ(v, 5);
  }
}

TEST(DatabaseTest, CreateColumnOverwrites) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  ASSERT_OK(db->CreateColumn("c", Encoding::kUncompressed, {1, 2, 3}));
  ASSERT_OK(db->CreateColumn("c", Encoding::kUncompressed, {9, 8}));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* reader, db->GetColumn("c"));
  EXPECT_EQ(reader->num_values(), 2u);
  ASSERT_OK_AND_ASSIGN(Value v, reader->ValueAt(0));
  EXPECT_EQ(v, 9);
}

TEST(DatabaseTest, DropCachesForcesPhysicalReads) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  std::vector<Value> vals = testing::RunnyValues(100000, 10, 1.0, 2);
  ASSERT_OK(db->CreateColumn("c", Encoding::kUncompressed, vals));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* reader, db->GetColumn("c"));

  plan::SelectionQuery q;
  q.columns.push_back({reader, Predicate::True()});

  ASSERT_OK_AND_ASSIGN(auto r1, db->RunSelection(q, Strategy::kEmParallel));
  EXPECT_GT(r1.stats.io.physical_reads, 0u);
  // Warm: no physical reads.
  ASSERT_OK_AND_ASSIGN(auto r2, db->RunSelection(q, Strategy::kEmParallel));
  EXPECT_EQ(r2.stats.io.physical_reads, 0u);
  EXPECT_GT(r2.stats.io.cache_hits, 0u);
  // Cold again after dropping caches.
  db->DropCaches();
  ASSERT_OK_AND_ASSIGN(auto r3, db->RunSelection(q, Strategy::kEmParallel));
  EXPECT_EQ(r3.stats.io.physical_reads, r1.stats.io.physical_reads);
}

TEST(DatabaseTest, DiskModelChargesAppearInStats) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  opts.disk.enabled = true;
  opts.disk.seek_micros = 1000;
  opts.disk.read_micros = 500;
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  std::vector<Value> vals = testing::RunnyValues(50000, 10, 1.0, 3);
  ASSERT_OK(db->CreateColumn("c", Encoding::kUncompressed, vals));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* reader, db->GetColumn("c"));

  plan::SelectionQuery q;
  q.columns.push_back({reader, Predicate::True()});
  ASSERT_OK_AND_ASSIGN(auto r, db->RunSelection(q, Strategy::kEmParallel));
  // 7 blocks cold at 1500us each.
  EXPECT_DOUBLE_EQ(r.stats.charged_io_micros,
                   1500.0 * r.stats.io.physical_reads);
  EXPECT_GT(r.stats.TotalMicros(), r.stats.wall_micros);
}

TEST(DatabaseTest, TableRegistryValidatesAndResolves) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  ASSERT_OK(db->CreateColumn("f1", Encoding::kUncompressed, {1, 2, 3}));
  ASSERT_OK(db->CreateColumn("f2", Encoding::kUncompressed, {4, 5, 6}));
  ASSERT_OK(db->CreateColumn("f3", Encoding::kUncompressed, {7, 8}));

  // Mismatched row counts rejected.
  EXPECT_FALSE(db->RegisterTable("bad", {{"a", "f1"}, {"b", "f3"}}).ok());
  // Empty table rejected.
  EXPECT_FALSE(db->RegisterTable("empty", {}).ok());

  ASSERT_OK(db->RegisterTable("good", {{"a", "f1"}, {"b", "f2"}}));
  EXPECT_TRUE(db->HasTable("good"));
  EXPECT_FALSE(db->HasTable("bad"));
  ASSERT_OK_AND_ASSIGN(auto cols, db->TableColumns("good"));
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* ra,
                       db->GetTableColumn("good", "a"));
  ASSERT_OK_AND_ASSIGN(Value v, ra->ValueAt(2));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(db->GetTableColumn("good", "ghost").ok());
  EXPECT_FALSE(db->GetTableColumn("ghost", "a").ok());
}

TEST(DatabaseTest, CatalogPersistsAcrossReopen) {
  TempDir dir;
  {
    db::Database::Options opts;
    opts.dir = dir.path();
    ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
    ASSERT_OK(db->CreateColumn("pc1", Encoding::kRle, {1, 1, 2}));
    ASSERT_OK(db->CreateColumn("pc2", Encoding::kUncompressed, {9, 8, 7}));
    ASSERT_OK(db->RegisterTable("persisted", {{"x", "pc1"}, {"y", "pc2"}}));
  }
  {
    db::Database::Options opts;
    opts.dir = dir.path();
    ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
    EXPECT_TRUE(db->HasTable("persisted"));
    ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* ry,
                         db->GetTableColumn("persisted", "y"));
    ASSERT_OK_AND_ASSIGN(Value v, ry->ValueAt(0));
    EXPECT_EQ(v, 9);
    ASSERT_OK_AND_ASSIGN(auto cols, db->TableColumns("persisted"));
    EXPECT_EQ(cols, (std::vector<std::string>{"x", "y"}));
  }
}

TEST(DatabaseTest, ResultTuplesMatchAcrossStrategies) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  ASSERT_OK_AND_ASSIGN(auto db, db::Database::Open(opts));
  std::vector<Value> a = testing::SortedRunnyValues(80000, 40, 6.0, 4);
  std::vector<Value> b = testing::RunnyValues(80000, 7, 2.0, 5);
  ASSERT_OK(db->CreateColumn("a", Encoding::kRle, a));
  ASSERT_OK(db->CreateColumn("b", Encoding::kUncompressed, b));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* ra, db->GetColumn("a"));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* rb, db->GetColumn("b"));

  plan::SelectionQuery q;
  q.columns.push_back({ra, Predicate::LessThan(20)});
  q.columns.push_back({rb, Predicate::LessThan(6)});

  ASSERT_OK_AND_ASSIGN(auto em, db->RunSelection(q, Strategy::kEmPipelined));
  ASSERT_OK_AND_ASSIGN(auto lm, db->RunSelection(q, Strategy::kLmPipelined));
  ASSERT_EQ(em.tuples.num_tuples(), lm.tuples.num_tuples());
  for (size_t i = 0; i < em.tuples.num_tuples(); ++i) {
    EXPECT_EQ(em.tuples.position(i), lm.tuples.position(i));
    EXPECT_EQ(em.tuples.value(i, 0), lm.tuples.value(i, 0));
    EXPECT_EQ(em.tuples.value(i, 1), lm.tuples.value(i, 1));
  }
}

}  // namespace
}  // namespace cstore
