// Generator tests: determinism, projection sort order, the distributions
// the paper's experiments rely on (96% LINENUM < 7 selectivity, RLE-friendly
// SHIPDATE runs), and the loader's storage layout.

#include <memory>

#include <gtest/gtest.h>

#include "test_util.h"
#include "tpch/dates.h"
#include "tpch/generator.h"
#include "tpch/loader.h"

namespace cstore {
namespace {

using testing::TempDir;

TEST(DatesTest, RoundTrip) {
  EXPECT_EQ(tpch::StringToDay("1992-01-01"), 0);
  EXPECT_EQ(tpch::DayToString(0), "1992-01-01");
  EXPECT_EQ(tpch::StringToDay("1992-12-31"), 365);  // 1992 is a leap year
  EXPECT_EQ(tpch::DayToString(365), "1992-12-31");
  EXPECT_EQ(tpch::DayToString(366), "1993-01-01");
  for (int32_t day : {1, 100, 500, 1000, 2000, tpch::kMaxShipDay}) {
    EXPECT_EQ(tpch::StringToDay(tpch::DayToString(day)), day) << day;
  }
  EXPECT_EQ(tpch::StringToDay("1998-08-02"), tpch::kMaxOrderDay);
}

TEST(DatesTest, RejectsBadDates) {
  EXPECT_EQ(tpch::StringToDay("not-a-date"), -1);
  EXPECT_EQ(tpch::StringToDay("1991-01-01"), -1);
  EXPECT_EQ(tpch::StringToDay("1993-02-29"), -1);  // not a leap year
  EXPECT_EQ(tpch::StringToDay("1992-13-01"), -1);
}

TEST(DatesTest, LeapYearHandling) {
  EXPECT_EQ(tpch::DaysInMonth(1992, 2), 29);
  EXPECT_EQ(tpch::DaysInMonth(1993, 2), 28);
  EXPECT_EQ(tpch::DaysInMonth(1996, 2), 29);
  EXPECT_NE(tpch::StringToDay("1992-02-29"), -1);
}

TEST(LineitemGenTest, Deterministic) {
  auto a = tpch::GenerateLineitem(0.001, 42);
  auto b = tpch::GenerateLineitem(0.001, 42);
  EXPECT_EQ(a.shipdate, b.shipdate);
  EXPECT_EQ(a.linenum, b.linenum);
  EXPECT_EQ(a.returnflag, b.returnflag);
  EXPECT_EQ(a.quantity, b.quantity);
  auto c = tpch::GenerateLineitem(0.001, 43);
  EXPECT_NE(a.shipdate, c.shipdate);
}

TEST(LineitemGenTest, RowCountScales) {
  auto d = tpch::GenerateLineitem(0.001, 1);
  EXPECT_EQ(d.num_rows(), 6000u);
  EXPECT_EQ(d.shipdate.size(), 6000u);
  EXPECT_EQ(d.linenum.size(), 6000u);
  EXPECT_EQ(d.quantity.size(), 6000u);
}

TEST(LineitemGenTest, SortedByProjectionKeys) {
  auto d = tpch::GenerateLineitem(0.005, 7);
  for (size_t i = 1; i < d.num_rows(); ++i) {
    if (d.returnflag[i - 1] != d.returnflag[i]) {
      EXPECT_LT(d.returnflag[i - 1], d.returnflag[i]);
      continue;
    }
    if (d.shipdate[i - 1] != d.shipdate[i]) {
      EXPECT_LT(d.shipdate[i - 1], d.shipdate[i]);
      continue;
    }
    EXPECT_LE(d.linenum[i - 1], d.linenum[i]);
  }
}

TEST(LineitemGenTest, Distributions) {
  auto d = tpch::GenerateLineitem(0.01, 11);  // 60k rows
  const double n = static_cast<double>(d.num_rows());

  // LINENUM < 7 ≈ 96.4% (the paper's Y = 7 predicate selectivity);
  // P(LINENUM = l) = (8 - l)/28.
  double linenum_lt7 = 0;
  double linenum_is1 = 0;
  for (Value l : d.linenum) {
    EXPECT_GE(l, 1);
    EXPECT_LE(l, 7);
    if (l < 7) ++linenum_lt7;
    if (l == 1) ++linenum_is1;
  }
  EXPECT_NEAR(linenum_lt7 / n, 1.0 - 1.0 / 28, 0.01);
  EXPECT_NEAR(linenum_is1 / n, 7.0 / 28, 0.02);

  // RETURNFLAG: ≈ 25/25/50 A/R/N with A, N, R codes.
  double flag_n = 0;
  for (Value f : d.returnflag) {
    ASSERT_TRUE(f == tpch::kFlagA || f == tpch::kFlagN || f == tpch::kFlagR);
    if (f == tpch::kFlagN) ++flag_n;
  }
  EXPECT_NEAR(flag_n / n, 0.5, 0.06);

  // SHIPDATE within the calendar.
  for (Value s : d.shipdate) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, tpch::kMaxShipDay);
  }

  // QUANTITY uniform 1..50.
  double qsum = 0;
  for (Value q : d.quantity) {
    EXPECT_GE(q, 1);
    EXPECT_LE(q, 50);
    qsum += static_cast<double>(q);
  }
  EXPECT_NEAR(qsum / n, 25.5, 0.5);
}

TEST(JoinGenTest, CustomerKeysDenseAndOrdersInRange) {
  auto d = tpch::GenerateJoinTables(0.01, 3);
  ASSERT_EQ(d.customer_custkey.size(), 1500u);
  ASSERT_EQ(d.orders_custkey.size(), 15000u);
  for (size_t i = 0; i < d.customer_custkey.size(); ++i) {
    EXPECT_EQ(d.customer_custkey[i], static_cast<Value>(i + 1));
    EXPECT_GE(d.customer_nationcode[i], 0);
    EXPECT_LT(d.customer_nationcode[i], 25);
  }
  for (Value k : d.orders_custkey) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 1500);
  }
}

TEST(JoinGenTest, OrdersUnsorted) {
  // Out-of-order right positions are the premise of the Figure 13
  // experiment; sorted orders would defeat it.
  auto d = tpch::GenerateJoinTables(0.01, 3);
  bool sorted = true;
  for (size_t i = 1; i < d.orders_custkey.size(); ++i) {
    if (d.orders_custkey[i - 1] > d.orders_custkey[i]) {
      sorted = false;
      break;
    }
  }
  EXPECT_FALSE(sorted);
}

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

TEST_F(LoaderTest, LineitemLayoutMatchesPaper) {
  ASSERT_OK_AND_ASSIGN(tpch::LineitemColumns li,
                       tpch::LoadLineitem(db_.get(), 0.002, 42));
  EXPECT_EQ(li.num_rows, 12000u);
  EXPECT_EQ(li.returnflag->meta().encoding, codec::Encoding::kRle);
  EXPECT_EQ(li.shipdate->meta().encoding, codec::Encoding::kRle);
  EXPECT_EQ(li.linenum_plain->meta().encoding,
            codec::Encoding::kUncompressed);
  EXPECT_EQ(li.linenum_rle->meta().encoding, codec::Encoding::kRle);
  EXPECT_EQ(li.linenum_bv->meta().encoding, codec::Encoding::kBitVector);
  EXPECT_EQ(li.linenum_dict->meta().encoding, codec::Encoding::kDict);
  EXPECT_EQ(li.quantity->meta().encoding, codec::Encoding::kUncompressed);
  // All LINENUM representations hold the same logical column.
  EXPECT_EQ(li.linenum_plain->num_values(), li.num_rows);
  EXPECT_EQ(li.linenum_rle->num_values(), li.num_rows);
  EXPECT_EQ(li.linenum_bv->num_values(), li.num_rows);
  EXPECT_EQ(li.linenum_dict->num_values(), li.num_rows);
  // RETURNFLAG has 3 giant runs.
  EXPECT_LE(li.returnflag->meta().num_runs, 3u);
  // Encoding selector works.
  EXPECT_EQ(li.linenum(codec::Encoding::kRle), li.linenum_rle);
}

TEST_F(LoaderTest, ReusesExistingFiles) {
  ASSERT_OK_AND_ASSIGN(tpch::LineitemColumns a,
                       tpch::LoadLineitem(db_.get(), 0.002, 42));
  // A second load with identical parameters must reuse the files.
  ASSERT_OK_AND_ASSIGN(tpch::LineitemColumns b,
                       tpch::LoadLineitem(db_.get(), 0.002, 42));
  EXPECT_EQ(a.shipdate, b.shipdate);  // same reader instance from catalog
}

TEST_F(LoaderTest, JoinTablesLoad) {
  ASSERT_OK_AND_ASSIGN(tpch::JoinColumns jc,
                       tpch::LoadJoinTables(db_.get(), 0.01, 42));
  EXPECT_EQ(jc.num_orders, 15000u);
  EXPECT_EQ(jc.num_customers, 1500u);
  EXPECT_EQ(jc.orders_custkey->num_values(), 15000u);
  EXPECT_EQ(jc.customer_nationcode->num_values(), 1500u);
}

}  // namespace
}  // namespace cstore
