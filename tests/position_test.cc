// Position-set tests: the three representations, their conversions, the
// intersection/union algebra (checked against a naive std::set model), and
// the representation-selection heuristics of SetBuilder/Compacted.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "position/position_set.h"
#include "test_util.h"
#include "util/random.h"

namespace cstore {
namespace {

using position::Bitmap;
using position::PosList;
using position::PositionSet;
using position::Range;
using position::RangeSet;
using position::SetBuilder;

// --- RangeSet ---

TEST(RangeSetTest, AppendCoalescesAdjacent) {
  RangeSet rs;
  rs.Append(0, 10);
  rs.Append(10, 20);  // adjacent → coalesced
  rs.Append(25, 30);
  EXPECT_EQ(rs.num_ranges(), 2u);
  EXPECT_EQ(rs.Cardinality(), 25u);
  EXPECT_TRUE(rs.Contains(0));
  EXPECT_TRUE(rs.Contains(19));
  EXPECT_FALSE(rs.Contains(20));
  EXPECT_TRUE(rs.Contains(29));
  EXPECT_FALSE(rs.Contains(30));
}

TEST(RangeSetTest, EmptyAppendsIgnored) {
  RangeSet rs;
  rs.Append(5, 5);
  EXPECT_TRUE(rs.empty());
}

TEST(RangeSetTest, IntersectStreams) {
  RangeSet a;
  a.Append(0, 100);
  a.Append(200, 300);
  RangeSet b;
  b.Append(50, 250);
  RangeSet c = RangeSet::Intersect(a, b);
  ASSERT_EQ(c.num_ranges(), 2u);
  EXPECT_EQ(c.ranges()[0], (Range{50, 100}));
  EXPECT_EQ(c.ranges()[1], (Range{200, 250}));
}

TEST(RangeSetTest, UnionMergesOverlaps) {
  RangeSet a;
  a.Append(0, 10);
  a.Append(20, 30);
  RangeSet b;
  b.Append(5, 25);
  RangeSet c = RangeSet::Union(a, b);
  ASSERT_EQ(c.num_ranges(), 1u);
  EXPECT_EQ(c.ranges()[0], (Range{0, 30}));
}

// --- Bitmap ---

TEST(BitmapTest, SetRangeAndCount) {
  Bitmap bm(100, 256);
  bm.SetRange(110, 200);
  EXPECT_EQ(bm.CountSet(), 90u);
  EXPECT_FALSE(bm.Get(109));
  EXPECT_TRUE(bm.Get(110));
  EXPECT_TRUE(bm.Get(199));
  EXPECT_FALSE(bm.Get(200));
}

TEST(BitmapTest, SetRangeWithinOneWord) {
  Bitmap bm(0, 64);
  bm.SetRange(3, 9);
  EXPECT_EQ(bm.CountSet(), 6u);
  for (Position p = 3; p < 9; ++p) EXPECT_TRUE(bm.Get(p));
}

TEST(BitmapTest, AndOrSameWindow) {
  Bitmap a(0, 200);
  Bitmap b(0, 200);
  a.SetRange(0, 100);
  b.SetRange(50, 150);
  Bitmap and_ = Bitmap::And(a, b);
  EXPECT_EQ(and_.CountSet(), 50u);
  Bitmap or_ = Bitmap::Or(a, b);
  EXPECT_EQ(or_.CountSet(), 150u);
}

TEST(BitmapTest, MaskToRangeIsConstantTimeIntersection) {
  Bitmap bm(0, 1000);
  bm.SetRange(0, 1000);
  bm.MaskToRange(100, 900);
  EXPECT_EQ(bm.CountSet(), 800u);
  EXPECT_FALSE(bm.Get(99));
  EXPECT_TRUE(bm.Get(100));
  EXPECT_TRUE(bm.Get(899));
  EXPECT_FALSE(bm.Get(900));
}

TEST(BitmapTest, MaskToEmptyRangeClearsAll) {
  Bitmap bm(0, 128);
  bm.SetRange(0, 128);
  bm.MaskToRange(64, 64);
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(BitmapTest, ForEachRunFindsMaximalRuns) {
  Bitmap bm(10, 300);
  bm.SetRange(10, 20);
  bm.SetRange(75, 140);  // crosses a word boundary
  bm.Set(309);           // final position
  std::vector<std::pair<Position, Position>> runs;
  bm.ForEachRun([&](Position b, Position e) { runs.emplace_back(b, e); });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_pair(Position{10}, Position{20}));
  EXPECT_EQ(runs[1], std::make_pair(Position{75}, Position{140}));
  EXPECT_EQ(runs[2], std::make_pair(Position{309}, Position{310}));
}

TEST(BitmapTest, CountRunsEarlyExit) {
  Bitmap bm(0, 6400);
  for (Position p = 0; p < 6400; p += 2) bm.Set(p);  // 3200 runs
  EXPECT_GT(bm.CountRuns(100), 100u);
  EXPECT_EQ(bm.CountRuns(10000), 3200u);
}

TEST(BitmapTest, ForEachSetAscending) {
  Bitmap bm(5, 100);
  bm.Set(7);
  bm.Set(68);
  bm.Set(104);
  std::vector<Position> got;
  bm.ForEachSet([&](Position p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<Position>{7, 68, 104}));
}

// --- PosList ---

TEST(PosListTest, IntersectAndUnion) {
  PosList a({1, 3, 5, 7, 9});
  PosList b({3, 4, 5, 9, 10});
  PosList i = PosList::Intersect(a, b);
  EXPECT_EQ(i.positions(), (std::vector<Position>{3, 5, 9}));
  PosList u = PosList::Union(a, b);
  EXPECT_EQ(u.positions(), (std::vector<Position>{1, 3, 4, 5, 7, 9, 10}));
}

TEST(PosListTest, Contains) {
  PosList a({2, 4, 6});
  EXPECT_TRUE(a.Contains(4));
  EXPECT_FALSE(a.Contains(5));
}

// --- PositionSet algebra (property tests vs. naive sets) ---

std::set<Position> ToStdSet(const PositionSet& ps) {
  std::set<Position> out;
  ps.ForEachPosition([&](Position p) { out.insert(p); });
  return out;
}

/// Builds a random PositionSet over [0, n) in the requested representation.
PositionSet RandomSet(PositionSet::Rep rep, size_t n, double density,
                      Random* rng, std::set<Position>* model) {
  std::vector<bool> bits(n);
  for (size_t i = 0; i < n; ++i) {
    bits[i] = rng->Bernoulli(density);
    if (bits[i]) model->insert(i);
  }
  switch (rep) {
    case PositionSet::Rep::kRanges: {
      RangeSet rs;
      size_t i = 0;
      while (i < n) {
        if (!bits[i]) {
          ++i;
          continue;
        }
        size_t j = i;
        while (j < n && bits[j]) ++j;
        rs.Append(i, j);
        i = j;
      }
      return PositionSet::FromRanges(0, n, std::move(rs));
    }
    case PositionSet::Rep::kBitmap: {
      Bitmap bm(0, n);
      for (size_t i = 0; i < n; ++i) {
        if (bits[i]) bm.Set(i);
      }
      return PositionSet::FromBitmap(std::move(bm));
    }
    case PositionSet::Rep::kList: {
      PosList pl;
      for (size_t i = 0; i < n; ++i) {
        if (bits[i]) pl.Append(i);
      }
      return PositionSet::FromList(0, n, std::move(pl));
    }
  }
  return PositionSet::Empty(0, n);
}

struct AlgebraCase {
  PositionSet::Rep rep_a;
  PositionSet::Rep rep_b;
  double density_a;
  double density_b;
};

class PositionAlgebraTest : public ::testing::TestWithParam<AlgebraCase> {};

TEST_P(PositionAlgebraTest, IntersectAndUnionMatchNaive) {
  const AlgebraCase& tc = GetParam();
  Random rng(0xabcdef);
  const size_t n = 5000;
  for (int round = 0; round < 5; ++round) {
    std::set<Position> ma;
    std::set<Position> mb;
    PositionSet a = RandomSet(tc.rep_a, n, tc.density_a, &rng, &ma);
    PositionSet b = RandomSet(tc.rep_b, n, tc.density_b, &rng, &mb);

    std::set<Position> want_and;
    std::set_intersection(ma.begin(), ma.end(), mb.begin(), mb.end(),
                          std::inserter(want_and, want_and.begin()));
    std::set<Position> want_or;
    std::set_union(ma.begin(), ma.end(), mb.begin(), mb.end(),
                   std::inserter(want_or, want_or.begin()));

    PositionSet got_and = PositionSet::Intersect(a, b);
    EXPECT_EQ(ToStdSet(got_and), want_and);
    EXPECT_EQ(got_and.Cardinality(), want_and.size());

    PositionSet got_or = PositionSet::Union(a, b);
    EXPECT_EQ(ToStdSet(got_or), want_or);

    // Compaction must not change contents.
    EXPECT_EQ(ToStdSet(got_and.Compacted()), want_and);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RepPairs, PositionAlgebraTest,
    ::testing::Values(
        AlgebraCase{PositionSet::Rep::kRanges, PositionSet::Rep::kRanges, 0.5,
                    0.5},
        AlgebraCase{PositionSet::Rep::kBitmap, PositionSet::Rep::kBitmap, 0.5,
                    0.9},
        AlgebraCase{PositionSet::Rep::kList, PositionSet::Rep::kList, 0.01,
                    0.02},
        AlgebraCase{PositionSet::Rep::kRanges, PositionSet::Rep::kBitmap, 0.3,
                    0.7},
        AlgebraCase{PositionSet::Rep::kRanges, PositionSet::Rep::kList, 0.6,
                    0.05},
        AlgebraCase{PositionSet::Rep::kBitmap, PositionSet::Rep::kList, 0.8,
                    0.03}));

TEST(PositionSetTest, SingleRangeBitmapFastPath) {
  // range ∧ bitmap with one range exercises the constant-time masking path.
  RangeSet rs;
  rs.Append(100, 900);
  PositionSet a = PositionSet::FromRanges(0, 1000, std::move(rs));
  Bitmap bm(0, 1000);
  for (Position p = 0; p < 1000; p += 3) bm.Set(p);
  PositionSet b = PositionSet::FromBitmap(std::move(bm));
  PositionSet got = PositionSet::Intersect(a, b);
  EXPECT_EQ(got.rep(), PositionSet::Rep::kBitmap);
  got.ForEachPosition([&](Position p) {
    EXPECT_GE(p, 100u);
    EXPECT_LT(p, 900u);
    EXPECT_EQ(p % 3, 0u);
  });
  // Multiples of 3 in [100, 900): 102, 105, ..., 897.
  EXPECT_EQ(got.Cardinality(), (897u - 102u) / 3 + 1);
}

TEST(PositionSetTest, WindowsNormalizedOnIntersect) {
  PositionSet a = PositionSet::All(0, 100);
  PositionSet b = PositionSet::All(50, 150);
  PositionSet c = PositionSet::Intersect(a, b);
  EXPECT_EQ(c.window_begin(), 50u);
  EXPECT_EQ(c.window_end(), 100u);
  EXPECT_EQ(c.Cardinality(), 50u);
}

TEST(PositionSetTest, DisjointWindowsIntersectEmpty) {
  PositionSet a = PositionSet::All(0, 100);
  PositionSet b = PositionSet::All(200, 300);
  PositionSet c = PositionSet::Intersect(a, b);
  EXPECT_TRUE(c.IsEmpty());
}

TEST(PositionSetTest, SliceClipsContents) {
  PositionSet a = PositionSet::All(0, 100);
  PositionSet s = a.Slice(30, 60);
  EXPECT_EQ(s.window_begin(), 30u);
  EXPECT_EQ(s.window_end(), 60u);
  EXPECT_EQ(s.Cardinality(), 30u);
}

TEST(PositionSetTest, ConversionsRoundTrip) {
  Random rng(99);
  std::set<Position> model;
  PositionSet a = RandomSet(PositionSet::Rep::kBitmap, 2000, 0.2, &rng,
                            &model);
  EXPECT_EQ(ToStdSet(PositionSet::FromList(0, 2000, a.ToList())), model);
  EXPECT_EQ(ToStdSet(PositionSet::FromRanges(0, 2000, a.ToRanges())), model);
  EXPECT_EQ(ToStdSet(PositionSet::FromBitmap(a.ToBitmap())), model);
  EXPECT_EQ(a.ToVector().size(), model.size());
}

// --- SetBuilder representation choice ---

TEST(SetBuilderTest, ContiguousStaysRanged) {
  SetBuilder b(0, 100000);
  b.AddRange(5000, 60000);
  PositionSet ps = std::move(b).Build();
  EXPECT_EQ(ps.rep(), PositionSet::Rep::kRanges);
  EXPECT_EQ(ps.Cardinality(), 55000u);
}

TEST(SetBuilderTest, FragmentedUpgradesToBitmapOrList) {
  // Every third position: far more than kMaxRanges runs, dense enough that
  // a list is not chosen.
  SetBuilder b(0, 30000);
  for (Position p = 0; p < 30000; p += 3) b.Add(p);
  PositionSet ps = std::move(b).Build();
  EXPECT_EQ(ps.rep(), PositionSet::Rep::kBitmap);
  EXPECT_EQ(ps.Cardinality(), 10000u);
}

TEST(SetBuilderTest, SparseBecomesList) {
  SetBuilder b(0, 100000);
  for (Position p = 0; p < 100000; p += 700) b.Add(p);  // 143 sparse points
  PositionSet ps = std::move(b).Build();
  EXPECT_EQ(ps.rep(), PositionSet::Rep::kList);
  EXPECT_EQ(ps.Cardinality(), 143u);
}

TEST(SetBuilderTest, AdjacentAddsCoalesce) {
  SetBuilder b(0, 1000);
  for (Position p = 100; p < 900; ++p) b.Add(p);  // one logical run
  PositionSet ps = std::move(b).Build();
  EXPECT_EQ(ps.rep(), PositionSet::Rep::kRanges);
  EXPECT_EQ(ps.ranges().num_ranges(), 1u);
}

TEST(CompactedTest, AllAndEmptyNormalize) {
  PositionSet all = PositionSet::FromBitmap([] {
    Bitmap bm(0, 500);
    bm.SetRange(0, 500);
    return bm;
  }());
  EXPECT_EQ(all.Compacted().rep(), PositionSet::Rep::kRanges);
  PositionSet empty = PositionSet::FromBitmap(Bitmap(0, 500));
  EXPECT_TRUE(empty.Compacted().IsEmpty());
  EXPECT_EQ(empty.Compacted().rep(), PositionSet::Rep::kRanges);
}

}  // namespace
}  // namespace cstore
