// Storage tests: file manager round-trips, buffer-pool caching/pinning/LRU
// semantics (single-mutex and sharded layouts), I/O statistics, retired-fd
// capping, and the simulated disk model.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/file_manager.h"
#include "test_util.h"

namespace cstore {
namespace {

using storage::BufferPool;
using storage::DiskModel;
using storage::FileId;
using storage::FileManager;
using storage::Page;
using storage::PageRef;
using testing::TempDir;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fm = FileManager::Open(dir_.path());
    ASSERT_TRUE(fm.ok());
    files_ = std::move(fm).value();
  }

  Page MakePage(uint32_t tag) {
    Page p;
    p.header()->magic = storage::BlockHeader::kMagic;
    p.header()->num_values = tag;
    std::memcpy(p.payload(), &tag, sizeof(tag));
    return p;
  }

  TempDir dir_;
  std::unique_ptr<FileManager> files_;
};

TEST_F(StorageTest, AppendAndReadBack) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t blk, files_->AppendBlock(f, MakePage(i)));
    EXPECT_EQ(blk, i);
  }
  ASSERT_OK_AND_ASSIGN(uint64_t n, files_->NumBlocks(f));
  EXPECT_EQ(n, 5u);
  Page p;
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_OK(files_->ReadBlock(f, i, &p));
    EXPECT_EQ(p.header()->num_values, i);
  }
}

TEST_F(StorageTest, ReadBeyondEndFails) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  ASSERT_OK_AND_ASSIGN(uint64_t blk, files_->AppendBlock(f, MakePage(0)));
  (void)blk;
  Page p;
  EXPECT_FALSE(files_->ReadBlock(f, 1, &p).ok());
}

TEST_F(StorageTest, OpenExistingSeesPersistedBlocks) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, MakePage(i)));
    (void)b;
  }
  // Re-open through a second manager (fresh process simulation).
  ASSERT_OK_AND_ASSIGN(auto files2, FileManager::Open(dir_.path()));
  ASSERT_OK_AND_ASSIGN(FileId f2, files2->OpenExisting("col"));
  ASSERT_OK_AND_ASSIGN(uint64_t n, files2->NumBlocks(f2));
  EXPECT_EQ(n, 3u);
}

TEST_F(StorageTest, OpenMissingFileFails) {
  EXPECT_FALSE(files_->OpenExisting("nope").ok());
  EXPECT_FALSE(files_->Exists("nope"));
}

TEST_F(StorageTest, SidecarRoundTrip) {
  std::vector<char> bytes = {'a', 'b', 'c', 0, 1, 2};
  ASSERT_OK(files_->WriteSidecar("col", bytes));
  ASSERT_OK_AND_ASSIGN(auto got, files_->ReadSidecar("col"));
  EXPECT_EQ(got, bytes);
}

TEST_F(StorageTest, CorruptMagicDetected) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  Page bad;
  bad.header()->magic = 0xdeadbeef;
  ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, bad));
  (void)b;
  Page p;
  Status st = files_->ReadBlock(f, 0, &p);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

class BufferPoolTest : public StorageTest {
 protected:
  void Fill(const std::string& name, uint32_t nblocks, FileId* out) {
    ASSERT_OK_AND_ASSIGN(FileId f, files_->Create(name));
    for (uint32_t i = 0; i < nblocks; ++i) {
      ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, MakePage(i)));
      (void)b;
    }
    *out = f;
  }
};

TEST_F(BufferPoolTest, HitAfterMiss) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 8);
  {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
    EXPECT_EQ(r.header()->num_values, 0u);
  }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
    (void)r;
  }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pool.stats().cache_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLruWhenFull) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 4);
  for (uint64_t b = 0; b < 10; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.stats().physical_reads, 10u);
  EXPECT_EQ(pool.stats().evictions, 6u);
  EXPECT_EQ(pool.num_cached(), 4u);
  // Blocks 6..9 resident; 0 is not.
  ASSERT_OK_AND_ASSIGN(PageRef r9, pool.Fetch(f, 9));
  (void)r9;
  EXPECT_EQ(pool.stats().cache_hits, 1u);
  ASSERT_OK_AND_ASSIGN(PageRef r0, pool.Fetch(f, 0));
  (void)r0;
  EXPECT_EQ(pool.stats().physical_reads, 11u);
}

TEST_F(BufferPoolTest, PinnedPagesNeverEvicted) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 3);
  ASSERT_OK_AND_ASSIGN(PageRef pin0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef pin1, pool.Fetch(f, 1));
  // Cycle through the remaining frame.
  for (uint64_t b = 2; b < 10; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  // Pinned pages still resident: refetching is a hit.
  uint64_t hits_before = pool.stats().cache_hits;
  ASSERT_OK_AND_ASSIGN(PageRef again0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef again1, pool.Fetch(f, 1));
  (void)again0;
  (void)again1;
  EXPECT_EQ(pool.stats().cache_hits, hits_before + 2);
  EXPECT_EQ(pin0.header()->num_values, 0u);
  EXPECT_EQ(pin1.header()->num_values, 1u);
}

TEST_F(BufferPoolTest, AllFramesPinnedFails) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 2);
  ASSERT_OK_AND_ASSIGN(PageRef a, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef b, pool.Fetch(f, 1));
  auto r = pool.Fetch(f, 2);
  EXPECT_FALSE(r.ok());
  // Releasing a pin makes room again.
  a.Release();
  ASSERT_OK_AND_ASSIGN(PageRef c, pool.Fetch(f, 2));
  (void)b;
  (void)c;
}

TEST_F(BufferPoolTest, SeekCounting) {
  FileId f;
  Fill("col", 8, &f);
  BufferPool pool(files_.get(), 16);
  // Sequential reads: one seek for the first block only.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.stats().seeks, 1u);
  // A jump is a seek.
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 7));
  (void)r;
  EXPECT_EQ(pool.stats().seeks, 2u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 8);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.num_cached(), 4u);
  pool.Clear();
  EXPECT_EQ(pool.num_cached(), 0u);
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
  (void)r;
  EXPECT_EQ(pool.stats().physical_reads, 5u);
}

TEST_F(BufferPoolTest, ResidentFraction) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 16);
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(f, 10), 0.5);
}

TEST_F(BufferPoolTest, MoveSemanticsOfPageRef) {
  FileId f;
  Fill("col", 2, &f);
  BufferPool pool(files_.get(), 4);
  ASSERT_OK_AND_ASSIGN(PageRef a, pool.Fetch(f, 0));
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.header()->num_values, 0u);
  PageRef c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
}

// --- Sharded layout ---------------------------------------------------------

TEST_F(BufferPoolTest, ShardCapacitySplitsWithRemainder) {
  FileId f;
  Fill("col", 2, &f);
  BufferPool pool(files_.get(), 10, nullptr, 4);
  EXPECT_EQ(pool.num_shards(), 4u);
  // 10 frames over 4 shards: remainder goes to the first shards.
  EXPECT_EQ(pool.shard_capacity(0), 3u);
  EXPECT_EQ(pool.shard_capacity(1), 3u);
  EXPECT_EQ(pool.shard_capacity(2), 2u);
  EXPECT_EQ(pool.shard_capacity(3), 2u);
  size_t total = 0;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    total += pool.shard_capacity(s);
  }
  EXPECT_EQ(total, pool.capacity());
}

TEST_F(BufferPoolTest, ShardCountClampedToCapacity) {
  FileId f;
  Fill("col", 2, &f);
  BufferPool pool(files_.get(), 3, nullptr, 16);
  EXPECT_EQ(pool.num_shards(), 3u);  // never more shards than frames
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
  EXPECT_EQ(r.header()->num_values, 0u);
}

TEST_F(BufferPoolTest, ShardedReadsMatchUnshardedAndMergeStats) {
  FileId f;
  Fill("col", 12, &f);
  // Roomy shards (8 frames each for 12 blocks) so no hash skew can evict.
  BufferPool flat(files_.get(), 32, nullptr, 1);
  BufferPool sharded(files_.get(), 32, nullptr, 4);
  for (uint64_t b = 0; b < 12; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef a, flat.Fetch(f, b));
    ASSERT_OK_AND_ASSIGN(PageRef s, sharded.Fetch(f, b));
    EXPECT_EQ(a.header()->num_values, s.header()->num_values);
    EXPECT_EQ(std::memcmp(a.payload(), s.payload(), 16), 0);
  }
  // The merged counters are layout-independent: every block missed once,
  // and a refetch of every block hits regardless of which shard holds it.
  EXPECT_EQ(sharded.stats().physical_reads, 12u);
  EXPECT_EQ(sharded.num_cached(), 12u);
  for (uint64_t b = 0; b < 12; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, sharded.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(sharded.stats().physical_reads, 12u);
  EXPECT_EQ(sharded.stats().cache_hits, 12u);
}

TEST_F(BufferPoolTest, ShardedEvictionIsPerShard) {
  FileId f;
  Fill("col", 64, &f);
  BufferPool pool(files_.get(), 8, nullptr, 2);
  // Stream far more blocks than capacity: each shard evicts from its own
  // LRU; the pool as a whole stays exactly full.
  for (uint64_t b = 0; b < 64; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    EXPECT_EQ(r.header()->num_values, b);
  }
  EXPECT_EQ(pool.stats().physical_reads, 64u);
  size_t cached = pool.num_cached();
  EXPECT_LE(cached, 8u);
  EXPECT_GT(cached, 0u);
  // Every miss either used a free frame or evicted a resident block.
  EXPECT_EQ(pool.stats().evictions, 64u - cached);
}

TEST_F(BufferPoolTest, ShardedExhaustionUnderPinsReportsShard) {
  FileId f;
  Fill("col", 16, &f);
  BufferPool pool(files_.get(), 4, nullptr, 2);
  // Hold pins on distinct blocks until some shard runs out of frames. With
  // every frame pinnable and 2-frame shards, a failure must arrive no later
  // than the (capacity+1)-th distinct block, whatever the hash layout.
  std::vector<PageRef> pins;
  Status failure = Status::OK();
  for (uint64_t b = 0; b < 16 && failure.ok(); ++b) {
    auto r = pool.Fetch(f, b);
    if (!r.ok()) {
      failure = r.status();
      break;
    }
    pins.push_back(std::move(r).value());
  }
  ASSERT_FALSE(failure.ok());
  EXPECT_LE(pins.size(), pool.capacity());
  // The error names the shard split so the failure mode is diagnosable.
  EXPECT_NE(failure.ToString().find("shard capacity"), std::string::npos)
      << failure.ToString();
  // Releasing the pins makes every shard usable again.
  pins.clear();
  for (uint64_t b = 0; b < 16; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
}

TEST_F(BufferPoolTest, ShardedPinnedPagesSurviveEvictionPressure) {
  FileId f;
  Fill("col", 32, &f);
  // 4 frames per shard: even if both pins land in one shard, that shard
  // still has evictable frames for the stream below.
  BufferPool pool(files_.get(), 8, nullptr, 2);
  ASSERT_OK_AND_ASSIGN(PageRef pin0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef pin1, pool.Fetch(f, 1));
  for (uint64_t b = 2; b < 32; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  uint64_t hits_before = pool.stats().cache_hits;
  ASSERT_OK_AND_ASSIGN(PageRef again0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef again1, pool.Fetch(f, 1));
  EXPECT_EQ(pool.stats().cache_hits, hits_before + 2);
  EXPECT_EQ(again0.header()->num_values, 0u);
  EXPECT_EQ(again1.header()->num_values, 1u);
}

TEST_F(BufferPoolTest, ShardedClearDropsEveryShard) {
  FileId f;
  Fill("col", 12, &f);
  BufferPool pool(files_.get(), 32, nullptr, 4);
  for (uint64_t b = 0; b < 12; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.num_cached(), 12u);
  pool.Clear();
  EXPECT_EQ(pool.num_cached(), 0u);
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 3));
  (void)r;
  EXPECT_EQ(pool.stats().physical_reads, 13u);
}

TEST_F(BufferPoolTest, LockContentionCountersPresent) {
  FileId f;
  Fill("col", 8, &f);
  BufferPool pool(files_.get(), 16, nullptr, 4);
  for (uint64_t b = 0; b < 8; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  // Every Fetch takes a shard lock at least once; serial use never contends.
  EXPECT_GE(pool.stats().pool_lock_acquisitions, 8u);
  EXPECT_EQ(pool.stats().pool_lock_contended, 0u);
  EXPECT_EQ(pool.stats().pool_lock_wait_ns, 0u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().pool_lock_acquisitions, 0u);
}

TEST_F(BufferPoolTest, ShardedConcurrentFetchesAreConsistent) {
  FileId f;
  Fill("col", 32, &f);
  // 8 frames per shard >= kThreads: even if every thread's pin lands in one
  // shard, Fetch can always find a frame (each thread pins one block at a
  // time), so the storm exercises eviction without spurious exhaustion.
  BufferPool pool(files_.get(), 16, nullptr, 2);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> bad(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < 40; ++round) {
        for (uint64_t b = 0; b < 32; ++b) {
          auto r = pool.Fetch(f, b);
          if (!r.ok() || r->header()->num_values != b) ++bad[t];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0);
  // Counter sanity after the storm: every Fetch was either a hit or a
  // physical read, and residency never exceeds capacity.
  EXPECT_LE(pool.num_cached(), pool.capacity());
  EXPECT_GT(pool.num_cached(), 0u);
  EXPECT_EQ(pool.stats().cache_hits + pool.stats().physical_reads,
            uint64_t{kThreads} * 40u * 32u);
}

// --- Retired-descriptor capping ---------------------------------------------

TEST_F(StorageTest, RetiredFdsStayCapped) {
  files_->set_max_retired_fds(4);
  // Re-creating a name retires the previous descriptor (the tuple mover
  // does this once per generation swap); the cap bounds what accumulates.
  for (int gen = 0; gen < 20; ++gen) {
    ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
    ASSERT_OK_AND_ASSIGN(uint64_t b,
                         files_->AppendBlock(f, MakePage(gen)));
    (void)b;
    EXPECT_LE(files_->retired_fd_count(), 4u);
  }
  EXPECT_EQ(files_->retired_fd_count(), 4u);
  // The surviving (current) descriptor still reads correctly.
  ASSERT_OK_AND_ASSIGN(FileId f, files_->OpenExisting("col"));
  Page p;
  ASSERT_OK(files_->ReadBlock(f, 0, &p));
  EXPECT_EQ(p.header()->num_values, 19u);
}

TEST_F(StorageTest, RetiredFdCloseDoesNotDisturbConcurrentReads) {
  files_->set_max_retired_fds(2);
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("stable"));
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, MakePage(i)));
    (void)b;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reader([&]() {
    Page p;
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint32_t i = 0; i < 8; ++i) {
        if (!files_->ReadBlock(f, i, &p).ok() ||
            p.header()->num_values != i) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  // Churn generations of another column, forcing retired-fd closes under
  // the exclusive read gate while the reader preads under the shared gate.
  for (int gen = 0; gen < 50; ++gen) {
    ASSERT_OK_AND_ASSIGN(FileId g, files_->Create("churn"));
    ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(g, MakePage(gen)));
    (void)b;
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(files_->retired_fd_count(), 2u);
}

TEST(DiskModelTest, DisabledChargesNothing) {
  DiskModel dm;
  EXPECT_EQ(dm.CostForRead(true), 0.0);
  EXPECT_EQ(dm.CostForRead(false), 0.0);
}

TEST(DiskModelTest, Pf1ChargesSeekPerBlock) {
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 2500;
  params.read_micros = 1000;
  params.prefetch_blocks = 1;
  DiskModel dm(params);
  EXPECT_DOUBLE_EQ(dm.CostForRead(true), 3500.0);
  EXPECT_DOUBLE_EQ(dm.CostForRead(false), 3500.0);
}

TEST(DiskModelTest, PrefetchAmortizesSequentialSeeks) {
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 2500;
  params.read_micros = 1000;
  params.prefetch_blocks = 10;
  DiskModel dm(params);
  EXPECT_DOUBLE_EQ(dm.CostForRead(true), 1000.0 + 250.0);
  EXPECT_DOUBLE_EQ(dm.CostForRead(false), 3500.0);
}

TEST_F(BufferPoolTest, DiskModelChargesAccumulate) {
  FileId f;
  Fill("col", 4, &f);
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 100;
  params.read_micros = 10;
  params.prefetch_blocks = 1;
  DiskModel dm(params);
  BufferPool pool(files_.get(), 8, &dm);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  // 4 cold reads at PF=1: 4 * (100 + 10).
  EXPECT_DOUBLE_EQ(pool.stats().charged_io_micros, 440.0);
  // Hits charge nothing.
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
  (void)r;
  EXPECT_DOUBLE_EQ(pool.stats().charged_io_micros, 440.0);
}

}  // namespace
}  // namespace cstore
