// Storage tests: file manager round-trips, buffer-pool caching/pinning/LRU
// semantics, I/O statistics, and the simulated disk model.

#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/file_manager.h"
#include "test_util.h"

namespace cstore {
namespace {

using storage::BufferPool;
using storage::DiskModel;
using storage::FileId;
using storage::FileManager;
using storage::Page;
using storage::PageRef;
using testing::TempDir;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fm = FileManager::Open(dir_.path());
    ASSERT_TRUE(fm.ok());
    files_ = std::move(fm).value();
  }

  Page MakePage(uint32_t tag) {
    Page p;
    p.header()->magic = storage::BlockHeader::kMagic;
    p.header()->num_values = tag;
    std::memcpy(p.payload(), &tag, sizeof(tag));
    return p;
  }

  TempDir dir_;
  std::unique_ptr<FileManager> files_;
};

TEST_F(StorageTest, AppendAndReadBack) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t blk, files_->AppendBlock(f, MakePage(i)));
    EXPECT_EQ(blk, i);
  }
  ASSERT_OK_AND_ASSIGN(uint64_t n, files_->NumBlocks(f));
  EXPECT_EQ(n, 5u);
  Page p;
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_OK(files_->ReadBlock(f, i, &p));
    EXPECT_EQ(p.header()->num_values, i);
  }
}

TEST_F(StorageTest, ReadBeyondEndFails) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  ASSERT_OK_AND_ASSIGN(uint64_t blk, files_->AppendBlock(f, MakePage(0)));
  (void)blk;
  Page p;
  EXPECT_FALSE(files_->ReadBlock(f, 1, &p).ok());
}

TEST_F(StorageTest, OpenExistingSeesPersistedBlocks) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, MakePage(i)));
    (void)b;
  }
  // Re-open through a second manager (fresh process simulation).
  ASSERT_OK_AND_ASSIGN(auto files2, FileManager::Open(dir_.path()));
  ASSERT_OK_AND_ASSIGN(FileId f2, files2->OpenExisting("col"));
  ASSERT_OK_AND_ASSIGN(uint64_t n, files2->NumBlocks(f2));
  EXPECT_EQ(n, 3u);
}

TEST_F(StorageTest, OpenMissingFileFails) {
  EXPECT_FALSE(files_->OpenExisting("nope").ok());
  EXPECT_FALSE(files_->Exists("nope"));
}

TEST_F(StorageTest, SidecarRoundTrip) {
  std::vector<char> bytes = {'a', 'b', 'c', 0, 1, 2};
  ASSERT_OK(files_->WriteSidecar("col", bytes));
  ASSERT_OK_AND_ASSIGN(auto got, files_->ReadSidecar("col"));
  EXPECT_EQ(got, bytes);
}

TEST_F(StorageTest, CorruptMagicDetected) {
  ASSERT_OK_AND_ASSIGN(FileId f, files_->Create("col"));
  Page bad;
  bad.header()->magic = 0xdeadbeef;
  ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, bad));
  (void)b;
  Page p;
  Status st = files_->ReadBlock(f, 0, &p);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

class BufferPoolTest : public StorageTest {
 protected:
  void Fill(const std::string& name, uint32_t nblocks, FileId* out) {
    ASSERT_OK_AND_ASSIGN(FileId f, files_->Create(name));
    for (uint32_t i = 0; i < nblocks; ++i) {
      ASSERT_OK_AND_ASSIGN(uint64_t b, files_->AppendBlock(f, MakePage(i)));
      (void)b;
    }
    *out = f;
  }
};

TEST_F(BufferPoolTest, HitAfterMiss) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 8);
  {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
    EXPECT_EQ(r.header()->num_values, 0u);
  }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
    (void)r;
  }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pool.stats().cache_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLruWhenFull) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 4);
  for (uint64_t b = 0; b < 10; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.stats().physical_reads, 10u);
  EXPECT_EQ(pool.stats().evictions, 6u);
  EXPECT_EQ(pool.num_cached(), 4u);
  // Blocks 6..9 resident; 0 is not.
  ASSERT_OK_AND_ASSIGN(PageRef r9, pool.Fetch(f, 9));
  (void)r9;
  EXPECT_EQ(pool.stats().cache_hits, 1u);
  ASSERT_OK_AND_ASSIGN(PageRef r0, pool.Fetch(f, 0));
  (void)r0;
  EXPECT_EQ(pool.stats().physical_reads, 11u);
}

TEST_F(BufferPoolTest, PinnedPagesNeverEvicted) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 3);
  ASSERT_OK_AND_ASSIGN(PageRef pin0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef pin1, pool.Fetch(f, 1));
  // Cycle through the remaining frame.
  for (uint64_t b = 2; b < 10; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  // Pinned pages still resident: refetching is a hit.
  uint64_t hits_before = pool.stats().cache_hits;
  ASSERT_OK_AND_ASSIGN(PageRef again0, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef again1, pool.Fetch(f, 1));
  (void)again0;
  (void)again1;
  EXPECT_EQ(pool.stats().cache_hits, hits_before + 2);
  EXPECT_EQ(pin0.header()->num_values, 0u);
  EXPECT_EQ(pin1.header()->num_values, 1u);
}

TEST_F(BufferPoolTest, AllFramesPinnedFails) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 2);
  ASSERT_OK_AND_ASSIGN(PageRef a, pool.Fetch(f, 0));
  ASSERT_OK_AND_ASSIGN(PageRef b, pool.Fetch(f, 1));
  auto r = pool.Fetch(f, 2);
  EXPECT_FALSE(r.ok());
  // Releasing a pin makes room again.
  a.Release();
  ASSERT_OK_AND_ASSIGN(PageRef c, pool.Fetch(f, 2));
  (void)b;
  (void)c;
}

TEST_F(BufferPoolTest, SeekCounting) {
  FileId f;
  Fill("col", 8, &f);
  BufferPool pool(files_.get(), 16);
  // Sequential reads: one seek for the first block only.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.stats().seeks, 1u);
  // A jump is a seek.
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 7));
  (void)r;
  EXPECT_EQ(pool.stats().seeks, 2u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  FileId f;
  Fill("col", 4, &f);
  BufferPool pool(files_.get(), 8);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_EQ(pool.num_cached(), 4u);
  pool.Clear();
  EXPECT_EQ(pool.num_cached(), 0u);
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
  (void)r;
  EXPECT_EQ(pool.stats().physical_reads, 5u);
}

TEST_F(BufferPoolTest, ResidentFraction) {
  FileId f;
  Fill("col", 10, &f);
  BufferPool pool(files_.get(), 16);
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(f, 10), 0.5);
}

TEST_F(BufferPoolTest, MoveSemanticsOfPageRef) {
  FileId f;
  Fill("col", 2, &f);
  BufferPool pool(files_.get(), 4);
  ASSERT_OK_AND_ASSIGN(PageRef a, pool.Fetch(f, 0));
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.header()->num_values, 0u);
  PageRef c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
}

TEST(DiskModelTest, DisabledChargesNothing) {
  DiskModel dm;
  EXPECT_EQ(dm.CostForRead(true), 0.0);
  EXPECT_EQ(dm.CostForRead(false), 0.0);
}

TEST(DiskModelTest, Pf1ChargesSeekPerBlock) {
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 2500;
  params.read_micros = 1000;
  params.prefetch_blocks = 1;
  DiskModel dm(params);
  EXPECT_DOUBLE_EQ(dm.CostForRead(true), 3500.0);
  EXPECT_DOUBLE_EQ(dm.CostForRead(false), 3500.0);
}

TEST(DiskModelTest, PrefetchAmortizesSequentialSeeks) {
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 2500;
  params.read_micros = 1000;
  params.prefetch_blocks = 10;
  DiskModel dm(params);
  EXPECT_DOUBLE_EQ(dm.CostForRead(true), 1000.0 + 250.0);
  EXPECT_DOUBLE_EQ(dm.CostForRead(false), 3500.0);
}

TEST_F(BufferPoolTest, DiskModelChargesAccumulate) {
  FileId f;
  Fill("col", 4, &f);
  DiskModel::Params params;
  params.enabled = true;
  params.seek_micros = 100;
  params.read_micros = 10;
  params.prefetch_blocks = 1;
  DiskModel dm(params);
  BufferPool pool(files_.get(), 8, &dm);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, b));
    (void)r;
  }
  // 4 cold reads at PF=1: 4 * (100 + 10).
  EXPECT_DOUBLE_EQ(pool.stats().charged_io_micros, 440.0);
  // Hits charge nothing.
  ASSERT_OK_AND_ASSIGN(PageRef r, pool.Fetch(f, 0));
  (void)r;
  EXPECT_DOUBLE_EQ(pool.stats().charged_io_micros, 440.0);
}

}  // namespace
}  // namespace cstore
