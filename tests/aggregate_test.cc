// Aggregation-operator tests: GroupAccumulator semantics for every
// function, the RLE run-zip fast path against the general gather path,
// global (no GROUP BY) aggregation, and cross-strategy agreement on
// aggregates over every encoding.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/aggregate.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using exec::AggFunc;
using exec::GroupAccumulator;
using plan::Strategy;
using testing::TempDir;

TEST(GroupAccumulatorTest, SumWithCounts) {
  GroupAccumulator acc(AggFunc::kSum);
  acc.Add(1, 10, 3);  // run contribution: 10 * 3
  acc.Add(2, 5, 1);
  acc.Add(1, 2, 2);
  exec::TupleChunk out;
  acc.Emit(&out);
  ASSERT_EQ(out.num_tuples(), 2u);
  EXPECT_EQ(out.value(0, 0), 1);
  EXPECT_EQ(out.value(0, 1), 34);
  EXPECT_EQ(out.value(1, 0), 2);
  EXPECT_EQ(out.value(1, 1), 5);
}

TEST(GroupAccumulatorTest, CountIgnoresValues) {
  GroupAccumulator acc(AggFunc::kCount);
  acc.Add(7, 1000, 4);
  acc.Add(7, -5, 1);
  exec::TupleChunk out;
  acc.Emit(&out);
  ASSERT_EQ(out.num_tuples(), 1u);
  EXPECT_EQ(out.value(0, 1), 5);
}

TEST(GroupAccumulatorTest, MinMaxInitialization) {
  GroupAccumulator mn(AggFunc::kMin);
  mn.Add(0, 5, 1);
  mn.Add(0, -3, 2);
  mn.Add(0, 9, 1);
  exec::TupleChunk out;
  mn.Emit(&out);
  EXPECT_EQ(out.value(0, 1), -3);

  GroupAccumulator mx(AggFunc::kMax);
  mx.Add(0, -10, 1);
  mx.Add(0, -2, 1);
  mx.Emit(&out);
  EXPECT_EQ(out.value(0, 1), -2);
}

TEST(GroupAccumulatorTest, AvgTruncates) {
  GroupAccumulator acc(AggFunc::kAvg);
  acc.Add(0, 10, 1);
  acc.Add(0, 5, 2);  // sum 20, count 3 → avg 6 (truncated)
  exec::TupleChunk out;
  acc.Emit(&out);
  EXPECT_EQ(out.value(0, 1), 6);
}

TEST(GroupAccumulatorTest, GroupsSortedOnEmit) {
  GroupAccumulator acc(AggFunc::kSum);
  for (Value g : {5, 1, 9, 3, 7}) acc.Add(g, 1, 1);
  exec::TupleChunk out;
  acc.Emit(&out);
  ASSERT_EQ(out.num_tuples(), 5u);
  for (size_t i = 1; i < out.num_tuples(); ++i) {
    EXPECT_LT(out.value(i - 1, 0), out.value(i, 0));
  }
}

class AggPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

/// The run-zip fast path (both columns RLE) must agree with the general
/// gather path (same data uncompressed) for every aggregate function.
TEST_F(AggPlanTest, RunZipAgreesWithGeneralPath) {
  const size_t n = 120000;
  std::vector<Value> g = testing::SortedRunnyValues(n, 150, 24.0, 61);
  std::vector<Value> v = testing::SortedRunnyValues(n, 9, 48.0, 62);
  const auto* g_rle = Load("g_rle", Encoding::kRle, g);
  const auto* v_rle = Load("v_rle", Encoding::kRle, v);
  const auto* g_pl = Load("g_pl", Encoding::kUncompressed, g);
  const auto* v_pl = Load("v_pl", Encoding::kUncompressed, v);

  for (AggFunc func : {AggFunc::kSum, AggFunc::kCount, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kAvg}) {
    plan::AggQuery rle_q;
    rle_q.selection.columns.push_back({g_rle, Predicate::LessThan(100)});
    rle_q.selection.columns.push_back({v_rle, Predicate::LessThan(8)});
    rle_q.func = func;

    plan::AggQuery plain_q = rle_q;
    plain_q.selection.columns[0].reader = g_pl;
    plain_q.selection.columns[1].reader = v_pl;

    auto zip = db_->RunAgg(rle_q, Strategy::kLmParallel);
    auto gen = db_->RunAgg(plain_q, Strategy::kLmParallel);
    ASSERT_TRUE(zip.ok() && gen.ok());
    ASSERT_EQ(zip->tuples.num_tuples(), gen->tuples.num_tuples())
        << AggFuncName(func);
    for (size_t i = 0; i < zip->tuples.num_tuples(); ++i) {
      EXPECT_EQ(zip->tuples.value(i, 0), gen->tuples.value(i, 0));
      EXPECT_EQ(zip->tuples.value(i, 1), gen->tuples.value(i, 1))
          << AggFuncName(func) << " group " << zip->tuples.value(i, 0);
    }
  }
}

TEST_F(AggPlanTest, GlobalAggregationAllStrategies) {
  const size_t n = 90000;
  std::vector<Value> a = testing::SortedRunnyValues(n, 80, 12.0, 63);
  std::vector<Value> v = testing::RunnyValues(n, 50, 3.0, 64);
  const auto* ra = Load("ga", Encoding::kRle, a);
  const auto* rv = Load("gv", Encoding::kUncompressed, v);

  int64_t sum = 0;
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 40) {
      sum += v[i];
      ++count;
    }
  }

  plan::AggQuery q;
  // Global aggregate over v where a < 40; v itself is also scanned (its
  // predicate is True).
  q.selection.columns.push_back({rv, Predicate::True()});
  q.selection.columns.push_back({ra, Predicate::LessThan(40)});
  q.agg_index = 0;
  q.global = true;
  q.func = AggFunc::kSum;

  for (Strategy s : plan::kAllStrategies) {
    auto r = db_->RunAgg(q, s);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": "
                        << r.status().ToString();
    ASSERT_EQ(r->tuples.num_tuples(), 1u) << StrategyName(s);
    EXPECT_EQ(r->tuples.value(0, 1), sum) << StrategyName(s);
  }

  q.func = AggFunc::kCount;
  auto r = db_->RunAgg(q, Strategy::kLmParallel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.value(0, 1), static_cast<Value>(count));
}

TEST_F(AggPlanTest, GlobalRleFastPathAgreesWithPlain) {
  // Global SUM over an RLE aggregate column exercises the run-at-a-time
  // accumulation; compare against the same data stored uncompressed.
  const size_t n = 200000;
  std::vector<Value> filt = testing::SortedRunnyValues(n, 400, 16.0, 65);
  std::vector<Value> v = testing::SortedRunnyValues(n, 30, 64.0, 66);
  const auto* rf = Load("fr", Encoding::kRle, filt);
  const auto* v_rle = Load("vr", Encoding::kRle, v);
  const auto* v_pl = Load("vp", Encoding::kUncompressed, v);

  plan::AggQuery q;
  q.selection.columns.push_back({v_rle, Predicate::True()});
  q.selection.columns.push_back({rf, Predicate::Between(50, 250)});
  q.agg_index = 0;
  q.global = true;
  q.func = AggFunc::kSum;
  auto rle_r = db_->RunAgg(q, Strategy::kLmParallel);

  q.selection.columns[0].reader = v_pl;
  auto pl_r = db_->RunAgg(q, Strategy::kLmParallel);
  ASSERT_TRUE(rle_r.ok() && pl_r.ok());
  EXPECT_EQ(rle_r->tuples.value(0, 1), pl_r->tuples.value(0, 1));
}

TEST_F(AggPlanTest, AggregationOverEveryEncodingAgrees) {
  const size_t n = 100000;
  std::vector<Value> g = testing::SortedRunnyValues(n, 60, 20.0, 67);
  std::vector<Value> v = testing::RunnyValues(n, 7, 2.0, 68);
  const auto* rg = Load("eg", Encoding::kRle, g);

  std::map<Value, int64_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (g[i] < 45 && v[i] < 6) expected[g[i]] += v[i];
  }

  for (Encoding enc : {Encoding::kUncompressed, Encoding::kRle,
                       Encoding::kBitVector, Encoding::kDict}) {
    const auto* rv =
        Load(std::string("ev_") + codec::EncodingName(enc), enc, v);
    plan::AggQuery q;
    q.selection.columns.push_back({rg, Predicate::LessThan(45)});
    q.selection.columns.push_back({rv, Predicate::LessThan(6)});
    q.func = AggFunc::kSum;
    for (Strategy s : {Strategy::kEmParallel, Strategy::kLmParallel}) {
      auto r = db_->RunAgg(q, s);
      ASSERT_TRUE(r.ok()) << codec::EncodingName(enc);
      ASSERT_EQ(r->tuples.num_tuples(), expected.size())
          << codec::EncodingName(enc) << " " << StrategyName(s);
      size_t i = 0;
      for (const auto& [grp, sum] : expected) {
        EXPECT_EQ(r->tuples.value(i, 0), grp);
        EXPECT_EQ(r->tuples.value(i, 1), sum)
            << codec::EncodingName(enc) << " " << StrategyName(s);
        ++i;
      }
    }
  }
}

TEST_F(AggPlanTest, EmptyInputProducesNoGroups) {
  std::vector<Value> g = testing::RunnyValues(20000, 10, 1.0, 69);
  std::vector<Value> v = testing::RunnyValues(20000, 10, 1.0, 70);
  const auto* rg = Load("zg", Encoding::kUncompressed, g);
  const auto* rv = Load("zv", Encoding::kUncompressed, v);
  plan::AggQuery q;
  q.selection.columns.push_back({rg, Predicate::LessThan(-100)});
  q.selection.columns.push_back({rv, Predicate::True()});
  for (Strategy s : plan::kAllStrategies) {
    auto r = db_->RunAgg(q, s);
    ASSERT_TRUE(r.ok()) << StrategyName(s);
    EXPECT_EQ(r->tuples.num_tuples(), 0u) << StrategyName(s);
  }
}

}  // namespace
}  // namespace cstore
