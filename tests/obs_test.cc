// Observability suite: trace spans, metrics math, EXPLAIN ANALYZE.
//
// The contracts under test:
//  * TraceRecorder spans recorded during an 8-worker mixed scheduler batch
//    are complete (duration assigned) and strictly nested per thread —
//    any two spans on one thread either nest or are disjoint — with morsel
//    spans from at least two workers and build/finalize phases present.
//    This test is in the TSan CI matrix: it is the data-race check for the
//    per-thread buffer design.
//  * EXPLAIN ANALYZE per-operator actuals agree with the run's RunStats
//    (root tuple operator rows == output_tuples) and surface end to end
//    through SQL.
//  * Histogram percentiles match a brute-force sort to within the log2
//    bucket's bounds, and the mean is exact.
//  * Running a query with tracing enabled changes nothing about its result
//    (bit-identical checksum, rows, stats that matter).

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/connection.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "plan/parallel.h"
#include "sched/scheduler.h"
#include "test_util.h"
#include "tpch/dates.h"
#include "tpch/loader.h"
#include "util/string_dict.h"

namespace cstore {
namespace {

using plan::Strategy;
using testing::TempDir;

constexpr double kScaleFactor = 0.05;

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir();
    db::Database::Options opts;
    opts.dir = dir_->path();
    opts.pool_frames = 4096;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value().release();
    auto li = tpch::LoadLineitem(db_, kScaleFactor);
    ASSERT_TRUE(li.ok()) << li.status().ToString();
    li_ = new tpch::LineitemColumns(*li);
    auto jc = tpch::LoadJoinTables(db_, kScaleFactor);
    ASSERT_TRUE(jc.ok()) << jc.status().ToString();
    jc_ = new tpch::JoinColumns(*jc);
  }

  static void TearDownTestSuite() {
    delete jc_;
    delete li_;
    delete db_;
    delete dir_;
    jc_ = nullptr;
    li_ = nullptr;
    db_ = nullptr;
    dir_ = nullptr;
  }

  void TearDown() override {
    // Never leak tracing into a neighboring test.
    obs::TraceRecorder::Global().set_enabled(false);
  }

  static plan::SelectionQuery Selection() {
    plan::SelectionQuery sel;
    Value mid = (li_->shipdate->meta().min_value +
                 li_->shipdate->meta().max_value) /
                2;
    sel.columns.push_back({li_->shipdate, codec::Predicate::LessThan(mid)});
    sel.columns.push_back({li_->quantity, codec::Predicate::LessThan(30)});
    return sel;
  }

  static plan::JoinQuery Join() {
    plan::JoinQuery q;
    q.left_key = jc_->orders_custkey;
    q.left_pred = codec::Predicate::LessThan(
        static_cast<Value>(jc_->num_customers / 2));
    q.left_payload = jc_->orders_shipdate;
    q.right_key = jc_->customer_custkey;
    q.right_payload = jc_->customer_nationcode;
    return q;
  }

  static TempDir* dir_;
  static db::Database* db_;
  static tpch::LineitemColumns* li_;
  static tpch::JoinColumns* jc_;
};

TempDir* ObsTest::dir_ = nullptr;
db::Database* ObsTest::db_ = nullptr;
tpch::LineitemColumns* ObsTest::li_ = nullptr;
tpch::JoinColumns* ObsTest::jc_ = nullptr;

// ---------------------------------------------------------------------------
// Histogram math
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, PercentilesWithinBucketOfBruteForce) {
  obs::Histogram h;
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ull;  // xorshift64
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    uint64_t v = x % 1000000;
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  obs::Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());

  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    size_t idx = static_cast<size_t>(q * (values.size() - 1));
    uint64_t exact = values[idx];
    double est = snap.Percentile(q);
    // The estimate interpolates inside the bucket holding the rank-q
    // sample, so it lands within that bucket's bounds.
    int b = obs::Histogram::BucketOf(exact);
    double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
    double hi = b == 0 ? 0.0 : lo * 2;
    EXPECT_GE(est, lo) << "q=" << q << " exact=" << exact;
    EXPECT_LE(est, hi) << "q=" << q << " exact=" << exact;
  }

  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  EXPECT_DOUBLE_EQ(snap.Mean(),
                   static_cast<double>(sum) / values.size());
}

TEST(ObsHistogramTest, EmptyAndSingleton) {
  obs::Histogram h;
  EXPECT_EQ(h.snapshot().Percentile(0.99), 0.0);
  EXPECT_EQ(h.snapshot().Mean(), 0.0);
  h.Observe(42);
  obs::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.Percentile(0.5), 32.0);
  EXPECT_LE(snap.Percentile(0.5), 64.0);
}

TEST(ObsMetricsTest, RegistryKindsAndDump) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("obs_test_counter", "test counter");
  ASSERT_NE(c, nullptr);
  c->Inc(3);
  EXPECT_EQ(c, reg.GetCounter("obs_test_counter"));  // stable pointer
  EXPECT_EQ(reg.GetGauge("obs_test_counter"), nullptr);  // kind conflict

  obs::Gauge* g = reg.GetGauge("obs_test_gauge", "test gauge");
  ASSERT_NE(g, nullptr);
  g->Set(7);

  obs::Histogram* h =
      reg.GetHistogram("obs_test_hist{kind=\"x\"}", "test histogram");
  ASSERT_NE(h, nullptr);
  h->Observe(100);

  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("obs_test_counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_test_gauge 7"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_test_hist_count{kind=\"x\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Trace spans under a concurrent mixed batch
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansCompleteAndStrictlyNestedUnderMixedBatch) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.set_enabled(true);

  {
    sched::Scheduler::Options so;
    so.num_workers = 8;
    sched::Scheduler scheduler(so);
    api::Connection conn(db_, &scheduler);
    plan::SelectionQuery sel = Selection();
    plan::JoinQuery join = Join();

    std::vector<api::PendingResult> pending;
    const Strategy strategies[] = {Strategy::kEmPipelined,
                                   Strategy::kEmParallel,
                                   Strategy::kLmPipelined,
                                   Strategy::kLmParallel};
    for (int round = 0; round < 4; ++round) {
      for (Strategy s : strategies) {
        pending.push_back(
            conn.Submit(plan::PlanTemplate::Selection(sel, s), false));
      }
      pending.push_back(conn.Submit(
          plan::PlanTemplate::Join(join, exec::JoinRightMode::kMultiColumn),
          false));
    }
    for (auto& p : pending) {
      auto r = p.Wait();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  rec.set_enabled(false);

  std::vector<obs::TraceEvent> events = rec.Snapshot();
  ASSERT_FALSE(events.empty());

  std::map<uint32_t, std::vector<const obs::TraceEvent*>> by_tid;
  std::set<std::string> names;
  std::set<uint32_t> morsel_tids;
  for (const obs::TraceEvent& e : events) {
    names.insert(e.name);
    if (e.phase == 'i') continue;  // instants carry no duration
    EXPECT_EQ(e.phase, 'X');
    by_tid[e.tid].push_back(&e);
    if (std::string(e.name) == "morsel") morsel_tids.insert(e.tid);
  }

  // The batch exercised every instrumented phase.
  EXPECT_TRUE(names.count("morsel")) << "no morsel spans";
  EXPECT_TRUE(names.count("join_build")) << "no join build spans";
  EXPECT_TRUE(names.count("finalize")) << "no finalize spans";
  EXPECT_TRUE(names.count("queue_wait")) << "no queue-wait instants";
  // 8 workers, 20 queries: execution cannot have stayed on one thread.
  EXPECT_GE(morsel_tids.size(), 2u);

  // Strict nesting: any two complete spans on one thread either nest or
  // are disjoint. A worker's spans are sequential scopes; overlap without
  // containment would mean a span survived outside its RAII scope.
  for (const auto& [tid, spans] : by_tid) {
    for (size_t i = 0; i < spans.size(); ++i) {
      uint64_t a0 = spans[i]->start_ns;
      uint64_t a1 = a0 + spans[i]->dur_ns;
      for (size_t j = i + 1; j < spans.size(); ++j) {
        uint64_t b0 = spans[j]->start_ns;
        uint64_t b1 = b0 + spans[j]->dur_ns;
        bool disjoint = a1 <= b0 || b1 <= a0;
        bool a_in_b = b0 <= a0 && a1 <= b1;
        bool b_in_a = a0 <= b0 && b1 <= a1;
        ASSERT_TRUE(disjoint || a_in_b || b_in_a)
            << "tid " << tid << ": spans '" << spans[i]->name << "' ["
            << a0 << "," << a1 << ") and '" << spans[j]->name << "' ["
            << b0 << "," << b1 << ") overlap without nesting";
      }
    }
  }

  // The export is loadable JSON with the Chrome trace_event envelope.
  std::string json = rec.ExportChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  rec.Clear();
}

TEST_F(ObsTest, DisabledAndEnabledTracingProduceIdenticalResults) {
  api::Connection conn(db_);
  const std::string sql =
      "SELECT shipdate, SUM(quantity) FROM lineitem "
      "WHERE shipdate < '1995-06-01' GROUP BY shipdate";

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.set_enabled(false);
  ASSERT_OK_AND_ASSIGN(api::QueryResult off, conn.Query(sql, {}, 2));
  rec.set_enabled(true);
  ASSERT_OK_AND_ASSIGN(api::QueryResult on, conn.Query(sql, {}, 2));
  rec.set_enabled(false);
  rec.Clear();

  EXPECT_EQ(off.stats.output_tuples, on.stats.output_tuples);
  EXPECT_EQ(off.stats.checksum, on.stats.checksum);
  EXPECT_EQ(off.stats.exec.blocks_fetched, on.stats.exec.blocks_fetched);
  EXPECT_EQ(off.tuples.num_tuples(), on.tuples.num_tuples());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PlanProfileActualsMatchRunStats) {
  auto profile = std::make_shared<obs::PlanProfile>();
  plan::PlanConfig config;
  config.num_workers = 2;
  config.profile = profile;
  plan::PlanTemplate tmpl = plan::PlanTemplate::Selection(
      Selection(), Strategy::kLmParallel, config);
  plan::RunStats stats;
  ASSERT_OK(plan::ExecuteParallel(tmpl, db_->pool(), &stats));
  ASSERT_GT(stats.output_tuples, 0u);

  auto rows = profile->rows();
  ASSERT_FALSE(rows.empty());
  uint64_t root_rows = 0;
  int root_index = -1;
  for (const auto& [key, row] : rows) {
    EXPECT_GE(row.actuals.calls, 1u) << row.name;
    // Tuple-section root = highest ownership index in section kTuple.
    if (key.first == static_cast<int>(obs::OpSection::kTuple) &&
        key.second > root_index) {
      root_index = key.second;
      root_rows = row.actuals.rows;
    }
  }
  ASSERT_GE(root_index, 0) << "no tuple-section operators profiled";
  // The tuple pipeline's root emits exactly what the executor counted.
  EXPECT_EQ(root_rows, stats.output_tuples);
  EXPECT_GT(profile->TotalTimeNs(), 0u);
}

TEST_F(ObsTest, ExplainAnalyzeSqlEndToEnd) {
  api::Connection conn(db_);
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult r,
      conn.Query("EXPLAIN ANALYZE SELECT shipdate, SUM(quantity) FROM "
                 "lineitem WHERE shipdate < '1995-06-01' GROUP BY "
                 "shipdate"));
  ASSERT_FALSE(r.explain_text.empty());
  EXPECT_EQ(r.tuples.num_tuples(), 0u);  // report instead of rows
  EXPECT_NE(r.explain_text.find("strategy:"), std::string::npos)
      << r.explain_text;
  EXPECT_NE(r.explain_text.find("plan (actual"), std::string::npos)
      << r.explain_text;
  EXPECT_NE(r.explain_text.find("calls="), std::string::npos)
      << r.explain_text;
  EXPECT_NE(r.explain_text.find("actual: wall="), std::string::npos)
      << r.explain_text;
  EXPECT_GT(r.stats.output_tuples, 0u);  // it really executed

  // Plain EXPLAIN predicts without executing: no actuals section.
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult plan_only,
      conn.Query("EXPLAIN SELECT shipdate FROM lineitem WHERE shipdate < "
                 "'1995-06-01'"));
  ASSERT_FALSE(plan_only.explain_text.empty());
  EXPECT_EQ(plan_only.explain_text.find("plan (actual"), std::string::npos)
      << plan_only.explain_text;

  // EXPLAIN is Query-only: not preparable, not streamable, SELECT-only.
  EXPECT_FALSE(conn.Prepare("EXPLAIN SELECT shipdate FROM lineitem").ok());
  EXPECT_FALSE(conn.Stream("EXPLAIN SELECT shipdate FROM lineitem").ok());
  EXPECT_FALSE(
      conn.Query("EXPLAIN DELETE FROM lineitem WHERE linenum = 1").ok());
}

TEST_F(ObsTest, ExplainAnalyzeApiWithParams) {
  api::Connection conn(db_);
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult r,
      conn.ExplainAnalyze(
          "SELECT shipdate FROM lineitem WHERE shipdate < ?",
          {static_cast<Value>(tpch::StringToDay("1995-06-01"))}));
  EXPECT_NE(r.explain_text.find("plan (actual"), std::string::npos);
  EXPECT_GT(r.stats.output_tuples, 0u);
  // Wrong arity is an error, not a crash.
  EXPECT_FALSE(
      conn.ExplainAnalyze("SELECT shipdate FROM lineitem WHERE shipdate < ?",
                          {})
          .ok());
}

TEST_F(ObsTest, ConnectionMetricsDump) {
  api::Connection conn(db_);
  ASSERT_OK(conn.Query("SELECT shipdate FROM lineitem WHERE shipdate < "
                       "'1995-01-01'")
                .status());
  std::string text = conn.Metrics();
  EXPECT_NE(text.find("cstore_bufferpool_hit_ratio"), std::string::npos);
  EXPECT_NE(text.find("cstore_chunk_pool_acquires"), std::string::npos);
  EXPECT_NE(text.find("cstore_retired_fds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Query log ring
// ---------------------------------------------------------------------------

TEST(QueryLogTest, RingWraparoundKeepsNewestInSeqOrder) {
  obs::QueryLog log(8);
  for (int i = 0; i < 20; ++i) {
    obs::QueryLogEntry e;
    e.rows_out = static_cast<uint64_t>(i);
    log.Record(std::move(e));
  }
  EXPECT_EQ(log.total_recorded(), 20u);
  std::vector<obs::QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 8u);
  // The 8 survivors are exactly records 12..19, oldest first.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 12 + i);
    EXPECT_EQ(entries[i].rows_out, 12 + i);
  }
}

TEST(QueryLogTest, DisabledRecordsNothing) {
  obs::QueryLog log(8);
  log.set_enabled(false);
  obs::QueryLogEntry e;
  log.Record(std::move(e));
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
}

// In the TSan CI matrix: 8 finalizing threads hammer one ring through the
// wrap path while a 9th snapshots it. Consistency contract: every snapshot
// holds <= capacity entries with strictly ascending seq, and each entry's
// payload is the one recorded under that seq (no torn slots).
TEST(QueryLogTest, ConcurrentWritersAndSnapshotsStayConsistent) {
  obs::QueryLog log(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<obs::QueryLogEntry> snap = log.Snapshot();
      ASSERT_LE(snap.size(), 64u);
      for (size_t i = 0; i < snap.size(); ++i) {
        // Every visible slot holds a complete Record()ed entry, never a
        // half-written one (the stripe lock covers the whole copy).
        ASSERT_EQ(snap[i].rows_out, 7u);
        ASSERT_EQ(snap[i].label, "writer entry");
        if (i > 0) {
          ASSERT_GT(snap[i].seq, snap[i - 1].seq);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::QueryLogEntry e;
        e.rows_out = 7;
        e.label = "writer entry";
        log.Record(std::move(e));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(log.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.Snapshot().size(), 64u);
}

TEST(QueryLogTest, SlowThresholdFlagsOnlyCrossingEntries) {
  obs::QueryLog log(8);
  log.SetSlowThresholdMicros(1000);
  obs::QueryLogEntry fast;
  fast.total_usec = 500;
  log.Record(std::move(fast));
  obs::QueryLogEntry slow;
  slow.total_usec = 1500;
  slow.label = "the slow one";
  log.Record(std::move(slow));
  std::vector<obs::QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].slow);
  EXPECT_TRUE(entries[1].slow);

  // Threshold 0 disables the check entirely.
  log.Clear();
  log.SetSlowThresholdMicros(0);
  obs::QueryLogEntry e;
  e.total_usec = UINT64_MAX;
  log.Record(std::move(e));
  EXPECT_FALSE(log.Snapshot()[0].slow);
}

// ---------------------------------------------------------------------------
// Trace buffer cap
// ---------------------------------------------------------------------------

TEST(TraceCapTest, PerThreadCapDropsAndCounts) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.set_max_events_per_thread(16);
  rec.set_enabled(true);
  const uint64_t dropped_before = rec.dropped_events();
  for (int i = 0; i < 50; ++i) {
    rec.Instant("cap_test", "test", "i", i);
  }
  rec.set_enabled(false);
  EXPECT_EQ(rec.Snapshot().size(), 16u);
  EXPECT_EQ(rec.dropped_events() - dropped_before, 34u);
  // The drop counter surfaces through the registry (and system.metrics).
  obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cstore_trace_dropped_spans");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value(), 34u);
  rec.set_max_events_per_thread(
      obs::TraceRecorder::kDefaultMaxEventsPerThread);
  rec.Clear();
}

// ---------------------------------------------------------------------------
// system.* virtual tables + query log end to end
// ---------------------------------------------------------------------------

TEST_F(ObsTest, QueryLogRowMatchesRunStats) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Clear();
  sched::Scheduler::Options so;
  so.num_workers = 4;
  sched::Scheduler scheduler(so);
  api::Connection conn(db_, &scheduler);
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult r,
      conn.Query(plan::PlanTemplate::Selection(Selection(),
                                               Strategy::kEmParallel)));
  std::vector<obs::QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const obs::QueryLogEntry& e = entries[0];
  EXPECT_EQ(e.label, "plan:selection");
  EXPECT_EQ(e.strategy, "EM-parallel");
  EXPECT_EQ(e.status, "ok");
  EXPECT_EQ(e.workers, 4);
  EXPECT_EQ(e.priority, 1);
  // The log row is the query's own RunStats, field for field.
  EXPECT_EQ(e.rows_out, r.stats.output_tuples);
  EXPECT_EQ(e.cache_hits, r.stats.io.cache_hits);
  EXPECT_EQ(e.physical_reads, r.stats.io.physical_reads);
  EXPECT_EQ(e.bytes_read,
            (r.stats.io.cache_hits + r.stats.io.physical_reads) * kPageSize);
  EXPECT_EQ(e.pool_lock_acquisitions, r.stats.io.pool_lock_acquisitions);
  EXPECT_EQ(e.chunk_pool_acquires, r.stats.exec.chunk_pool_acquires);
  EXPECT_EQ(e.chunk_pool_reuses, r.stats.exec.chunk_pool_reuses);
  EXPECT_EQ(e.total_usec, static_cast<uint64_t>(r.stats.wall_micros));
  EXPECT_EQ(e.queue_wait_usec + e.exec_usec, e.total_usec);
  EXPECT_GT(e.query_id, 0u);
}

TEST_F(ObsTest, QueryLogRecordsSqlTextAndStandalonePath) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Clear();
  api::Connection conn(db_);  // standalone: no scheduler
  const std::string sql =
      "SELECT shipdate FROM lineitem WHERE shipdate < '1995-01-01'";
  ASSERT_OK_AND_ASSIGN(api::QueryResult r, conn.Query(sql, {}, 2));
  std::vector<obs::QueryLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, sql);
  EXPECT_EQ(entries[0].status, "ok");
  EXPECT_EQ(entries[0].queue_wait_usec, 0u);  // no queue on this path
  EXPECT_EQ(entries[0].rows_out, r.stats.output_tuples);
}

TEST_F(ObsTest, SystemTablesAnswerThroughAllStrategies) {
  // Ground truth planted in the registry.
  obs::Counter* probe = obs::MetricsRegistry::Global().GetCounter(
      "obs_systable_probe", "system-table cross-check");
  ASSERT_NE(probe, nullptr);
  probe->Inc(42);

  api::Connection conn(db_);
  const std::string sql =
      "SELECT value FROM system.metrics WHERE name = 'obs_systable_probe'";
  const Strategy strategies[] = {Strategy::kEmPipelined,
                                 Strategy::kEmParallel,
                                 Strategy::kLmPipelined,
                                 Strategy::kLmParallel};
  for (Strategy s : strategies) {
    ASSERT_OK_AND_ASSIGN(api::QueryResult r, conn.Query(sql, s));
    ASSERT_EQ(r.tuples.num_tuples(), 1u) << plan::StrategyName(s);
    EXPECT_EQ(r.tuples.tuple(0)[0], 42) << plan::StrategyName(s);
  }

  // Aggregation over the same virtual rows.
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult agg,
      conn.Query("SELECT SUM(value) FROM system.metrics WHERE name = "
                 "'obs_systable_probe'"));
  ASSERT_EQ(agg.tuples.num_tuples(), 1u);
  EXPECT_EQ(agg.tuples.tuple(0)[0], 42);

  // Pooled scheduler path.
  sched::Scheduler::Options so;
  so.num_workers = 4;
  sched::Scheduler scheduler(so);
  api::Connection pooled(db_, &scheduler);
  ASSERT_OK_AND_ASSIGN(api::QueryResult pr, pooled.Query(sql, {}));
  ASSERT_EQ(pr.tuples.num_tuples(), 1u);
  EXPECT_EQ(pr.tuples.tuple(0)[0], 42);
}

TEST_F(ObsTest, SystemQueriesTablesPoolsAndLogCrossCheck) {
  api::Connection conn(db_);

  // system.queries: plant a live query and read it back by label.
  auto lq = std::make_shared<obs::LiveQuery>();
  lq->query_id = obs::NextQueryId();
  lq->label = "held for inspection";
  lq->priority = 3;
  lq->submit_usec = obs::MonotonicMicros();
  lq->morsels_total = 5;
  lq->state.store(1, std::memory_order_relaxed);
  lq->morsels_done.store(2, std::memory_order_relaxed);
  obs::LiveQueryRegistry::Global().Register(lq);
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult live,
      conn.Query("SELECT query_id, priority, morsels_done, morsels_total "
                 "FROM system.queries WHERE label = 'held for inspection'"));
  obs::LiveQueryRegistry::Global().Unregister(lq->query_id);
  ASSERT_EQ(live.tuples.num_tuples(), 1u);
  EXPECT_EQ(live.tuples.tuple(0)[0],
            static_cast<Value>(lq->query_id));
  EXPECT_EQ(live.tuples.tuple(0)[1], 3);
  EXPECT_EQ(live.tuples.tuple(0)[2], 2);
  EXPECT_EQ(live.tuples.tuple(0)[3], 5);

  // system.tables: the lineitem registration, checked against the catalog.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> li_cols,
                       db_->TableColumns("lineitem"));
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult tab,
      conn.Query("SELECT columns, base_rows, ws_rows FROM system.tables "
                 "WHERE table = 'lineitem'"));
  ASSERT_EQ(tab.tuples.num_tuples(), 1u);
  EXPECT_EQ(tab.tuples.tuple(0)[0],
            static_cast<Value>(li_cols.size()));
  EXPECT_EQ(tab.tuples.tuple(0)[1],
            static_cast<Value>(li_->shipdate->num_values()));

  // system.pools: buffer-pool counters equal the IoStats ground truth
  // (a system-table scan serves synthetic in-memory blocks — it does no
  // buffer-pool I/O itself, so the value cannot move between the snapshot
  // and this check).
  const storage::IoStats io = db_->pool()->stats();
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult pool_rows,
      conn.Query("SELECT value FROM system.pools WHERE pool = 'buffer_pool' "
                 "AND metric = 'cache_hits'"));
  ASSERT_EQ(pool_rows.tuples.num_tuples(), 1u);
  EXPECT_EQ(pool_rows.tuples.tuple(0)[0],
            static_cast<Value>(io.cache_hits));

  // system.query_log: a finished query shows up with its SQL text as the
  // (dictionary-encoded) label, and the logged row count matches.
  obs::QueryLog::Global().Clear();
  const std::string marked =
      "SELECT quantity FROM lineitem WHERE quantity < 10";
  ASSERT_OK_AND_ASSIGN(api::QueryResult marked_r, conn.Query(marked, {}, 1));
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult logged,
      conn.Query("SELECT label, rows_out, status FROM system.query_log"));
  ASSERT_GE(logged.tuples.num_tuples(), 1u);
  const Value want_label = util::StringDict::Global().Intern(marked);
  const Value want_ok = util::StringDict::Global().Intern("ok");
  bool found = false;
  for (size_t i = 0; i < logged.tuples.num_tuples(); ++i) {
    if (logged.tuples.tuple(i)[0] != want_label) continue;
    found = true;
    EXPECT_EQ(logged.tuples.tuple(i)[1],
              static_cast<Value>(marked_r.stats.output_tuples));
    EXPECT_EQ(logged.tuples.tuple(i)[2], want_ok);
  }
  EXPECT_TRUE(found) << "marked query not present in system.query_log";

  // Writes against any system table are rejected.
  EXPECT_FALSE(db_->Insert("system.metrics", {{1, 2, 3}}).ok());
  EXPECT_FALSE(conn.Query("DELETE FROM system.query_log WHERE seq = 0").ok());
  EXPECT_FALSE(
      conn.Query("UPDATE system.metrics SET value = 0 WHERE value = 42")
          .ok());
}

TEST(StringDictTest, InternLookupRoundTrip) {
  util::StringDict& dict = util::StringDict::Global();
  Value id = dict.Intern("round-trip probe");
  EXPECT_GE(id, util::StringDict::kBase);
  EXPECT_TRUE(util::StringDict::IsDictId(id));
  EXPECT_FALSE(util::StringDict::IsDictId(12345));
  EXPECT_EQ(dict.Intern("round-trip probe"), id);  // stable
  const std::string* s = dict.Lookup(id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, "round-trip probe");
  EXPECT_EQ(dict.Lookup(42), nullptr);
}

}  // namespace
}  // namespace cstore
