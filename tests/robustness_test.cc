// Robustness tests: corruption detection, resource-exhaustion error paths
// (no crashes, clean Status propagation), and a randomized query fuzzer
// comparing every strategy against a naive evaluator on arbitrary
// encoding/predicate/width combinations.

#include <fcntl.h>
#include <unistd.h>

#include <memory>

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::Encoding;
using codec::Predicate;
using plan::Strategy;
using testing::TempDir;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  const codec::ColumnReader* Load(const std::string& name, Encoding enc,
                                  const std::vector<Value>& vals) {
    Status st = db_->CreateColumn(name, enc, vals);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto r = db_->GetColumn(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  /// Overwrites `len` bytes at `offset` of a stored column file.
  void CorruptFile(const std::string& name, off_t offset, const char* bytes,
                   size_t len) {
    std::string path = dir_.path() + "/" + name;
    int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pwrite(fd, bytes, len, offset), static_cast<ssize_t>(len));
    ::close(fd);
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
};

TEST_F(RobustnessTest, CorruptBlockMagicSurfacesAsStatus) {
  std::vector<Value> vals = testing::RunnyValues(30000, 10, 1.0, 1);
  const auto* col = Load("c", Encoding::kUncompressed, vals);

  // Smash the second block's magic; the first block stays intact.
  const char garbage[4] = {'X', 'X', 'X', 'X'};
  CorruptFile("c", static_cast<off_t>(kPageSize), garbage, sizeof(garbage));
  db_->DropCaches();

  plan::SelectionQuery q;
  q.columns.push_back({col, Predicate::True()});
  for (Strategy s : plan::kAllStrategies) {
    db_->DropCaches();
    auto r = db_->RunSelection(q, s);
    ASSERT_FALSE(r.ok()) << StrategyName(s);
    EXPECT_TRUE(r.status().IsCorruption())
        << StrategyName(s) << ": " << r.status().ToString();
  }
}

TEST_F(RobustnessTest, TruncatedSidecarRejectedOnOpen) {
  std::vector<Value> vals = {1, 2, 3};
  ASSERT_OK(db_->CreateColumn("t", Encoding::kUncompressed, vals));
  // Truncate the sidecar to garbage.
  std::string meta_path = dir_.path() + "/t.meta";
  int fd = ::open(meta_path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "xy", 2), 2);
  ::close(fd);

  // A fresh database must refuse to open the column.
  db::Database::Options opts;
  opts.dir = dir_.path();
  ASSERT_OK_AND_ASSIGN(auto db2, db::Database::Open(opts));
  auto r = db2->GetColumn("t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST_F(RobustnessTest, BlockCountMismatchDetected) {
  std::vector<Value> vals = testing::RunnyValues(30000, 10, 1.0, 2);
  ASSERT_OK(db_->CreateColumn("m", Encoding::kUncompressed, vals));
  // Truncate the data file to fewer blocks than the sidecar claims.
  std::string path = dir_.path() + "/m";
  ASSERT_EQ(::truncate(path.c_str(), kPageSize), 0);

  db::Database::Options opts;
  opts.dir = dir_.path();
  ASSERT_OK_AND_ASSIGN(auto db2, db::Database::Open(opts));
  auto r = db2->GetColumn("m");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST_F(RobustnessTest, TinyBufferPoolFailsCleanly) {
  // An LM plan pins a window's worth of mini-column blocks; a pool smaller
  // than that must produce an error Status, never a crash or deadlock.
  db::Database::Options opts;
  opts.dir = dir_.path() + "/tiny";
  opts.pool_frames = 2;
  ASSERT_OK_AND_ASSIGN(auto tiny, db::Database::Open(opts));
  std::vector<Value> vals = testing::RunnyValues(100000, 10, 1.0, 3);
  ASSERT_OK(tiny->CreateColumn("c", Encoding::kUncompressed, vals));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* col, tiny->GetColumn("c"));

  plan::SelectionQuery q;
  q.columns.push_back({col, Predicate::True()});
  auto r = tiny->RunSelection(q, Strategy::kLmParallel);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal)
      << r.status().ToString();
  // The pool is usable again afterwards (pins were released on error).
  tiny->DropCaches();
}

TEST_F(RobustnessTest, ZeroMatchEveryEncodingEveryStrategy) {
  // Predicates outside the domain must return empty everywhere, cheaply.
  std::vector<Value> vals = testing::RunnyValues(50000, 9, 4.0, 4);
  for (Encoding enc : {Encoding::kUncompressed, Encoding::kRle,
                       Encoding::kBitVector, Encoding::kDict}) {
    const auto* col =
        Load(std::string("z") + codec::EncodingName(enc), enc, vals);
    plan::SelectionQuery q;
    q.columns.push_back({col, Predicate::GreaterThan(1000)});
    for (Strategy s : plan::kAllStrategies) {
      auto r = db_->RunSelection(q, s);
      ASSERT_TRUE(r.ok()) << StrategyName(s);
      EXPECT_EQ(r->stats.output_tuples, 0u)
          << codec::EncodingName(enc) << " " << StrategyName(s);
    }
  }
}

// --- Randomized cross-strategy fuzzer ---

TEST_F(RobustnessTest, RandomizedQueriesAgreeWithNaive) {
  Random rng(0xfeedface);
  const Encoding encodings[] = {Encoding::kUncompressed, Encoding::kRle,
                                Encoding::kBitVector, Encoding::kDict};

  for (int round = 0; round < 12; ++round) {
    const size_t n = 20000 + rng.Uniform(60000);
    const int width = 1 + static_cast<int>(rng.Uniform(3));

    std::vector<std::vector<Value>> data(width);
    plan::SelectionQuery q;
    std::vector<Predicate> preds;
    for (int c = 0; c < width; ++c) {
      int domain = 5 + static_cast<int>(rng.Uniform(400));
      double run = 1.0 + rng.NextDouble() * 20.0;
      data[c] = rng.Bernoulli(0.5)
                    ? testing::SortedRunnyValues(n, domain, run,
                                                 rng.Next())
                    : testing::RunnyValues(n, domain, run, rng.Next());
      Encoding enc = encodings[rng.Uniform(4)];

      Predicate pred;
      switch (rng.Uniform(5)) {
        case 0:
          pred = Predicate::LessThan(rng.UniformRange(-2, domain + 2));
          break;
        case 1:
          pred = Predicate::GreaterEqual(rng.UniformRange(-2, domain + 2));
          break;
        case 2:
          pred = Predicate::Equal(rng.UniformRange(0, domain));
          break;
        case 3: {
          Value lo = rng.UniformRange(0, domain);
          pred = Predicate::Between(lo, lo + rng.UniformRange(0, domain));
          break;
        }
        default:
          pred = Predicate::True();
          break;
      }
      preds.push_back(pred);
      const auto* reader =
          Load("fz" + std::to_string(round) + "_" + std::to_string(c), enc,
               data[c]);
      q.columns.push_back({reader, pred});
    }

    // Naive evaluation.
    uint64_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      bool pass = true;
      for (int c = 0; c < width; ++c) {
        if (!preds[c].Eval(data[c][i])) {
          pass = false;
          break;
        }
      }
      if (pass) ++expected;
    }

    uint64_t checksum = 0;
    bool first = true;
    for (Strategy s : plan::kAllStrategies) {
      auto r = db_->RunSelection(q, s);
      if (!r.ok()) {
        EXPECT_TRUE(r.status().IsNotSupported())
            << "round " << round << " " << StrategyName(s) << ": "
            << r.status().ToString();
        continue;
      }
      EXPECT_EQ(r->stats.output_tuples, expected)
          << "round " << round << " " << StrategyName(s);
      if (first) {
        checksum = r->stats.checksum;
        first = false;
      } else {
        EXPECT_EQ(r->stats.checksum, checksum)
            << "round " << round << " " << StrategyName(s);
      }
    }
  }
}

}  // namespace
}  // namespace cstore
