// Morsel-driven parallel execution: determinism and thread-safety tests.
//
// The contract under test: for every materialization strategy, a query's
// result *bag* — output_tuples and the order-independent checksum — is
// bit-identical across num_workers ∈ {1, 2, 4}, and the num_workers=1 path
// is the classic serial pull executor (identical to running the plan
// directly, including tuple order).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/morsel_source.h"
#include "plan/executor.h"
#include "plan/parallel.h"
#include "plan/planner.h"
#include "test_util.h"
#include "tpch/loader.h"

namespace cstore {
namespace {

using plan::Strategy;
using testing::TempDir;

// SF 0.1 ≈ 600 K lineitem rows ≈ 10 chunk windows: enough for one morsel
// per window across 4 workers.
constexpr double kScaleFactor = 0.1;

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    opts.pool_frames = 4096;
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    auto li = tpch::LoadLineitem(db_.get(), kScaleFactor);
    ASSERT_TRUE(li.ok()) << li.status().ToString();
    li_ = *li;
    ASSERT_GT(li_.num_rows, 4 * kChunkPositions)
        << "need several chunk windows for a meaningful parallel test";
  }

  /// Two-predicate selection over the lineitem slice. Column encodings are
  /// RLE (sorted shipdate) + uncompressed, which every strategy supports.
  plan::SelectionQuery MidSelectivityQuery() const {
    plan::SelectionQuery q;
    Value mid = (li_.shipdate->meta().min_value +
                 li_.shipdate->meta().max_value) /
                2;
    q.columns.push_back({li_.shipdate, codec::Predicate::LessThan(mid)});
    q.columns.push_back({li_.quantity, codec::Predicate::LessThan(30)});
    return q;
  }

  /// One-window-per-morsel config so 4 workers actually run concurrently.
  static plan::PlanConfig WorkerConfig(int workers) {
    plan::PlanConfig config;
    config.num_workers = workers;
    config.morsel_positions = kChunkPositions;
    return config;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
  tpch::LineitemColumns li_;
};

TEST_F(ParallelTest, SelectionDeterministicAcrossWorkerCounts) {
  plan::SelectionQuery q = MidSelectivityQuery();
  for (Strategy s : plan::kAllStrategies) {
    ASSERT_OK_AND_ASSIGN(db::QueryResult serial,
                         db_->RunSelection(q, s, WorkerConfig(1)));
    EXPECT_GT(serial.stats.output_tuples, 0u) << StrategyName(s);
    for (int workers : {2, 4}) {
      ASSERT_OK_AND_ASSIGN(
          db::QueryResult parallel,
          db_->RunSelection(q, s, WorkerConfig(workers)));
      EXPECT_EQ(parallel.stats.output_tuples, serial.stats.output_tuples)
          << StrategyName(s) << " workers=" << workers;
      EXPECT_EQ(parallel.stats.checksum, serial.stats.checksum)
          << StrategyName(s) << " workers=" << workers;
      EXPECT_EQ(parallel.tuples.num_tuples(), serial.tuples.num_tuples())
          << StrategyName(s) << " workers=" << workers;
    }
  }
}

TEST_F(ParallelTest, SingleWorkerMatchesDirectSerialExecutor) {
  plan::SelectionQuery q = MidSelectivityQuery();
  for (Strategy s : plan::kAllStrategies) {
    // The pre-refactor path: build the plan and pull it directly.
    ASSERT_OK_AND_ASSIGN(auto plan, plan::BuildSelectionPlan(q, s, {}));
    plan::RunStats direct;
    std::vector<std::pair<Position, Value>> direct_rows;
    ASSERT_OK(plan::ExecutePlan(plan.get(), db_->pool(), &direct,
                                [&](const exec::TupleChunk& chunk) {
                                  for (size_t i = 0; i < chunk.num_tuples();
                                       ++i) {
                                    direct_rows.emplace_back(
                                        chunk.position(i), chunk.value(i, 0));
                                  }
                                }));

    ASSERT_OK_AND_ASSIGN(db::QueryResult via_template,
                         db_->RunSelection(q, s, WorkerConfig(1)));
    EXPECT_EQ(via_template.stats.output_tuples, direct.output_tuples)
        << StrategyName(s);
    EXPECT_EQ(via_template.stats.checksum, direct.checksum)
        << StrategyName(s);
    // Serial path preserves exact tuple order, not just the bag.
    ASSERT_EQ(via_template.tuples.num_tuples(), direct_rows.size())
        << StrategyName(s);
    for (size_t i = 0; i < direct_rows.size(); ++i) {
      ASSERT_EQ(via_template.tuples.position(i), direct_rows[i].first)
          << StrategyName(s) << " row " << i;
      ASSERT_EQ(via_template.tuples.value(i, 0), direct_rows[i].second)
          << StrategyName(s) << " row " << i;
    }
  }
}

TEST_F(ParallelTest, AggregationDeterministicAcrossWorkerCounts) {
  plan::AggQuery q;
  q.selection = MidSelectivityQuery();
  q.group_index = 0;  // GROUP BY shipdate
  q.agg_index = 1;    // SUM(quantity)
  q.func = exec::AggFunc::kSum;
  for (Strategy s : plan::kAllStrategies) {
    ASSERT_OK_AND_ASSIGN(db::QueryResult serial,
                         db_->RunAgg(q, s, WorkerConfig(1)));
    EXPECT_GT(serial.stats.output_tuples, 0u) << StrategyName(s);
    for (int workers : {2, 4}) {
      ASSERT_OK_AND_ASSIGN(db::QueryResult parallel,
                           db_->RunAgg(q, s, WorkerConfig(workers)));
      EXPECT_EQ(parallel.stats.output_tuples, serial.stats.output_tuples)
          << StrategyName(s) << " workers=" << workers;
      EXPECT_EQ(parallel.stats.checksum, serial.stats.checksum)
          << StrategyName(s) << " workers=" << workers;
      // Aggregate groups are emitted sorted, so even tuple order matches.
      ASSERT_EQ(parallel.tuples.num_tuples(), serial.tuples.num_tuples());
      for (size_t i = 0; i < serial.tuples.num_tuples(); ++i) {
        ASSERT_EQ(parallel.tuples.value(i, 0), serial.tuples.value(i, 0));
        ASSERT_EQ(parallel.tuples.value(i, 1), serial.tuples.value(i, 1));
      }
    }
  }
}

TEST_F(ParallelTest, AllAggFunctionsMergeExactly) {
  using exec::AggFunc;
  for (AggFunc func : {AggFunc::kSum, AggFunc::kCount, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kAvg}) {
    plan::AggQuery q;
    q.selection = MidSelectivityQuery();
    q.group_index = 0;
    q.agg_index = 1;
    q.func = func;
    ASSERT_OK_AND_ASSIGN(
        db::QueryResult serial,
        db_->RunAgg(q, Strategy::kLmParallel, WorkerConfig(1)));
    ASSERT_OK_AND_ASSIGN(
        db::QueryResult parallel,
        db_->RunAgg(q, Strategy::kLmParallel, WorkerConfig(4)));
    EXPECT_EQ(parallel.stats.checksum, serial.stats.checksum)
        << exec::AggFuncName(func);
    EXPECT_EQ(parallel.stats.output_tuples, serial.stats.output_tuples)
        << exec::AggFuncName(func);
  }
}

TEST_F(ParallelTest, GlobalAggregationMergesAcrossWorkers) {
  plan::AggQuery q;
  q.selection = MidSelectivityQuery();
  q.agg_index = 1;
  q.func = exec::AggFunc::kSum;
  q.global = true;
  ASSERT_OK_AND_ASSIGN(db::QueryResult serial,
                       db_->RunAgg(q, Strategy::kEmParallel, WorkerConfig(1)));
  ASSERT_OK_AND_ASSIGN(
      db::QueryResult parallel,
      db_->RunAgg(q, Strategy::kEmParallel, WorkerConfig(4)));
  ASSERT_EQ(serial.tuples.num_tuples(), 1u);
  ASSERT_EQ(parallel.tuples.num_tuples(), 1u);
  EXPECT_EQ(parallel.tuples.value(0, 1), serial.tuples.value(0, 1));
  EXPECT_EQ(parallel.stats.checksum, serial.stats.checksum);
}

TEST(MorselSourceTest, CoversPositionSpaceExactlyOnce) {
  exec::MorselSource source(10 * kChunkPositions + 17, kChunkPositions);
  EXPECT_EQ(source.num_morsels(), 11u);
  position::Range r;
  Position covered = 0;
  Position expected_begin = 0;
  while (source.Next(&r)) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_EQ(r.begin % kChunkPositions, 0u);
    covered += r.length();
    expected_begin = r.end;
  }
  EXPECT_EQ(covered, 10 * kChunkPositions + 17);
}

TEST(MorselSourceTest, RoundsMorselSizeUpToChunkAlignment) {
  exec::MorselSource source(4 * kChunkPositions, kChunkPositions + 1);
  EXPECT_EQ(source.morsel_positions(), 2 * kChunkPositions);
  EXPECT_EQ(source.num_morsels(), 2u);
}

TEST(MorselSourceTest, CancelStopsHandingOutMorsels) {
  exec::MorselSource source(100 * kChunkPositions, kChunkPositions);
  position::Range r;
  ASSERT_TRUE(source.Next(&r));
  source.Cancel();
  EXPECT_FALSE(source.Next(&r));
}

TEST(MorselSourceTest, ConcurrentClaimsAreDisjointAndComplete) {
  const Position total = 64 * kChunkPositions;
  exec::MorselSource source(total, kChunkPositions);
  std::atomic<uint64_t> claimed{0};
  std::atomic<uint64_t> morsels{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      position::Range r;
      while (source.Next(&r)) {
        claimed.fetch_add(r.length());
        morsels.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // fetch_add hands out each morsel exactly once, so lengths sum to the
  // whole position space.
  EXPECT_EQ(claimed.load(), total);
  EXPECT_EQ(morsels.load(), 64u);
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchesAccountEveryRequest) {
  TempDir dir;
  db::Database::Options opts;
  opts.dir = dir.path();
  opts.pool_frames = 64;
  auto db_or = db::Database::Open(opts);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();
  std::vector<Value> vals = testing::RunnyValues(200000, 1000, 4.0, 7);
  ASSERT_OK(db->CreateColumn("conc", codec::Encoding::kUncompressed, vals));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* col, db->GetColumn("conc"));

  db->pool()->ResetStats();
  const int kThreads = 8;
  const int kRounds = 4;
  std::atomic<uint64_t> fetches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < kRounds; ++round) {
        for (uint64_t b = 0; b < col->num_blocks(); ++b) {
          auto blk = col->FetchBlock(b);
          ASSERT_TRUE(blk.ok());
          fetches.fetch_add(1);
          // Touch the payload so pins stay alive across real work.
          volatile Value v = blk->view.ValueAt(blk->view.start_pos());
          (void)v;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  storage::IoStats stats = db->pool()->stats();
  EXPECT_EQ(stats.cache_hits + stats.physical_reads, fetches.load());
  EXPECT_GE(stats.physical_reads, col->num_blocks());
}

}  // namespace
}  // namespace cstore
