// Shared helpers for the cstore test suite.

#ifndef CSTORE_TESTS_TEST_UTIL_H_
#define CSTORE_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codec/predicate.h"
#include "util/common.h"
#include "util/random.h"
#include "util/status.h"

#define ASSERT_OK(expr)                                  \
  do {                                                   \
    ::cstore::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    ::cstore::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                  \
  ASSERT_OK_AND_ASSIGN_IMPL_(                            \
      CSTORE_STATUS_CONCAT_(_assert_result_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)       \
  auto tmp = (expr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = std::move(tmp).value()

namespace cstore {
namespace testing {

/// Creates a fresh temporary directory for a test and removes it on
/// destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cstore_test_XXXXXX";
    char* got = ::mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path_ = got;
  }

  ~TempDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Generates `n` values with average run length `run_len` drawn from
/// [0, domain).
inline std::vector<Value> RunnyValues(size_t n, int domain, double run_len,
                                      uint64_t seed) {
  Random rng(seed);
  std::vector<Value> out;
  out.reserve(n);
  while (out.size() < n) {
    Value v = static_cast<Value>(rng.Uniform(domain));
    // Geometric-ish run length with the requested mean.
    size_t len = 1;
    while (rng.NextDouble() < 1.0 - 1.0 / run_len) ++len;
    for (size_t i = 0; i < len && out.size() < n; ++i) out.push_back(v);
  }
  return out;
}

/// Sorted variant (ascending), for clustered-predicate scenarios.
inline std::vector<Value> SortedRunnyValues(size_t n, int domain,
                                            double run_len, uint64_t seed) {
  std::vector<Value> v = RunnyValues(n, domain, run_len, seed);
  std::sort(v.begin(), v.end());
  return v;
}

/// Reference scan: positions in `values` matching `pred`.
inline std::vector<Position> NaiveMatches(const std::vector<Value>& values,
                                          const codec::Predicate& pred) {
  std::vector<Position> out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (pred.Eval(values[i])) out.push_back(i);
  }
  return out;
}

}  // namespace testing
}  // namespace cstore

#endif  // CSTORE_TESTS_TEST_UTIL_H_
