// api:: layer tests: Connection (sync / async / streaming / typed),
// PreparedStatement with `?` parameters (including re-execution across a
// concurrent compaction), RowCursor backpressure and cancellation, the
// UPDATE statement end to end, the join-side snapshot merge, EXPLAIN with
// `?` parameters, the non-blocking cursor poll (TryNext), and equivalence
// with the legacy wrappers (db::Database::Run*, sql::Engine) — which must
// stay bit-identical to the api:: paths they now delegate to.

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/connection.h"
#include "api/statement_cache.h"
#include "db/database.h"
#include "obs/query_log.h"
#include "plan/executor.h"
#include "sql/engine.h"
#include "test_util.h"
#include "util/random.h"

namespace cstore {
namespace {

using testing::TempDir;

constexpr int kWorkerCounts[] = {1, 2, 4};

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Database::Options opts;
    opts.dir = dir_.path();
    auto db = db::Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    const size_t n = 60000;
    a_ = testing::SortedRunnyValues(n, 500, 8.0, 1);
    b_ = testing::RunnyValues(n, 7, 2.0, 2);
    c_ = testing::RunnyValues(n, 100, 1.0, 3);
    ASSERT_OK(db_->CreateColumn("t.a", codec::Encoding::kRle, a_));
    ASSERT_OK(db_->CreateColumn("t.b", codec::Encoding::kUncompressed, b_));
    ASSERT_OK(db_->CreateColumn("t.c", codec::Encoding::kUncompressed, c_));
    ASSERT_OK(db_->RegisterTable(
        "t", {{"a", "t.a"}, {"b", "t.b"}, {"c", "t.c"}}));
  }

  /// Rows of `t` (by current reference vectors) passing a<alim && b<blim.
  uint64_t CountRef(Value alim, Value blim) {
    uint64_t n = 0;
    for (size_t i = 0; i < a_.size(); ++i) {
      if (a_[i] < alim && b_[i] < blim) ++n;
    }
    return n;
  }

  /// Registers `big(x)`: enough rows for several 64K-position output
  /// windows, so streaming genuinely spans multiple chunks.
  size_t MakeBigTable() {
    const size_t n = 400000;
    std::vector<Value> big(n);
    for (size_t i = 0; i < n; ++i) big[i] = static_cast<Value>(i % 1000);
    EXPECT_OK(
        db_->CreateColumn("big.x", codec::Encoding::kUncompressed, big));
    EXPECT_OK(db_->RegisterTable("big", {{"x", "big.x"}}));
    return n;
  }

  TempDir dir_;
  std::unique_ptr<db::Database> db_;
  std::vector<Value> a_, b_, c_;
};

// --- Connection: sync / async / typed equivalence ---------------------------

TEST_F(ApiTest, QueryMatchesEngineExecute) {
  api::Connection conn(db_.get());
  sql::Engine engine(db_.get());
  const char* statements[] = {
      "SELECT a, b FROM t WHERE a < 100 AND b < 6",
      "SELECT b FROM t WHERE a < 50",
      "SELECT a, SUM(b) FROM t WHERE b < 6 GROUP BY a",
      "SELECT COUNT(b) FROM t WHERE a < 100",
      "SELECT * FROM t WHERE a = 0",
  };
  for (const char* sql : statements) {
    // Advisor-chosen strategies may differ between the two sessions (each
    // calibrates its own cost model by timing real loops), but the result
    // bags must be identical regardless.
    ASSERT_OK_AND_ASSIGN(api::QueryResult via_conn, conn.Query(sql));
    ASSERT_OK_AND_ASSIGN(sql::SqlResult via_engine, engine.Execute(sql));
    EXPECT_EQ(via_conn.column_names, via_engine.column_names) << sql;
    EXPECT_EQ(via_conn.tuples.num_tuples(), via_engine.tuples.num_tuples())
        << sql;
    EXPECT_EQ(via_conn.stats.checksum, via_engine.stats.checksum) << sql;
    // With an explicit strategy the two surfaces must agree exactly.
    ASSERT_OK_AND_ASSIGN(
        api::QueryResult c2,
        conn.Query(sql, plan::Strategy::kLmParallel));
    ASSERT_OK_AND_ASSIGN(sql::SqlResult e2,
                         engine.Execute(sql, plan::Strategy::kLmParallel));
    EXPECT_EQ(c2.strategy, e2.strategy) << sql;
    EXPECT_EQ(c2.stats.checksum, e2.stats.checksum) << sql;
  }
}

TEST_F(ApiTest, SubmitMatchesQuery) {
  api::Connection conn(db_.get());
  const char* sql = "SELECT a, b FROM t WHERE a < 250 AND b < 7";
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, conn.Query(sql));
  api::PendingResult pending = conn.Submit(sql);
  EXPECT_TRUE(pending.valid());
  ASSERT_OK_AND_ASSIGN(api::QueryResult async, pending.Wait());
  EXPECT_EQ(async.tuples.num_tuples(), sync.tuples.num_tuples());
  EXPECT_EQ(async.stats.checksum, sync.stats.checksum);
  EXPECT_EQ(async.column_names, sync.column_names);
}

TEST_F(ApiTest, SubmitCarriesErrorsInHandle) {
  api::Connection conn(db_.get());
  api::PendingResult bad = conn.Submit("SELECT nope FROM t");
  api::PendingResult good = conn.Submit("SELECT a FROM t WHERE a < 10");
  EXPECT_TRUE(bad.Wait().status().IsNotFound());
  EXPECT_TRUE(good.Wait().ok());
  // Default-constructed handles are waitable too.
  api::PendingResult empty;
  EXPECT_FALSE(empty.Wait().ok());
}

TEST_F(ApiTest, PooledConnectionRunsOnSharedScheduler) {
  sched::Scheduler::Options so;
  so.num_workers = 2;
  sched::Scheduler scheduler(so);
  api::Connection pooled(db_.get(), &scheduler);
  api::Connection standalone(db_.get());
  const char* sql = "SELECT a, SUM(b) FROM t GROUP BY a";
  ASSERT_OK_AND_ASSIGN(api::QueryResult p, pooled.Query(sql));
  ASSERT_OK_AND_ASSIGN(api::QueryResult s, standalone.Query(sql));
  EXPECT_EQ(p.stats.checksum, s.stats.checksum);
  EXPECT_EQ(p.tuples.num_tuples(), s.tuples.num_tuples());
}

TEST_F(ApiTest, TypedTemplateMatchesLegacyRun) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* ra, db_->GetColumn("t.a"));
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* rb, db_->GetColumn("t.b"));
  plan::SelectionQuery q;
  q.columns.push_back({ra, codec::Predicate::LessThan(100)});
  q.columns.push_back({rb, codec::Predicate::LessThan(6)});
  for (plan::Strategy s : plan::kAllStrategies) {
    ASSERT_OK_AND_ASSIGN(api::QueryResult via_api,
                         conn.Query(plan::PlanTemplate::Selection(q, s)));
    ASSERT_OK_AND_ASSIGN(api::QueryResult via_db, db_->RunSelection(q, s));
    EXPECT_EQ(via_api.stats.checksum, via_db.stats.checksum);
    EXPECT_EQ(via_api.tuples.num_tuples(), via_db.tuples.num_tuples());
  }
}

TEST_F(ApiTest, SessionStrategyOverride) {
  api::Connection::Settings settings;
  settings.strategy = plan::Strategy::kEmPipelined;
  api::Connection conn(db_.get(), nullptr, settings);
  ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                       conn.Query("SELECT a, b FROM t WHERE a < 100"));
  EXPECT_EQ(r.strategy, plan::Strategy::kEmPipelined);
  // Per-call override wins over the session's.
  ASSERT_OK_AND_ASSIGN(
      r, conn.Query("SELECT a, b FROM t WHERE a < 100",
                    plan::Strategy::kLmParallel));
  EXPECT_EQ(r.strategy, plan::Strategy::kLmParallel);
}

// --- RowCursor --------------------------------------------------------------

TEST_F(ApiTest, StreamDeliversIdenticalBag) {
  api::Connection conn(db_.get());
  const char* sql = "SELECT a, b FROM t WHERE a < 200 AND b < 7";
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, conn.Query(sql));

  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(sql));
  EXPECT_EQ(cursor.column_names(),
            (std::vector<std::string>{"a", "b"}));
  uint64_t rows = 0;
  uint64_t digest = 0;
  exec::TupleChunk chunk;
  while (true) {
    auto has = cursor.Next(&chunk);
    ASSERT_OK(has.status());
    if (!*has) break;
    rows += chunk.num_tuples();
    digest += plan::ChunkDigest(chunk);  // wrapping add: order-independent
  }
  EXPECT_EQ(rows, sync.tuples.num_tuples());
  EXPECT_EQ(digest, sync.stats.checksum);
  EXPECT_EQ(cursor.stats().output_tuples, sync.stats.output_tuples);
}

TEST_F(ApiTest, StreamFetchAllIsTheCompatibilityPath) {
  api::Connection conn(db_.get());
  const char* sql = "SELECT b FROM t WHERE a < 50";
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, conn.Query(sql));
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(sql));
  ASSERT_OK_AND_ASSIGN(api::QueryResult streamed, cursor.FetchAll());
  ASSERT_EQ(streamed.tuples.num_tuples(), sync.tuples.num_tuples());
  ASSERT_EQ(streamed.tuples.width(), 1u);
  for (size_t i = 0; i < sync.tuples.num_tuples(); ++i) {
    EXPECT_EQ(streamed.tuples.value(i, 0), sync.tuples.value(i, 0));
  }
}

TEST_F(ApiTest, EmptyStreamKeepsOutputWidth) {
  api::Connection conn(db_.get());
  const char* sql = "SELECT a, b FROM t WHERE a < 0";
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, conn.Query(sql));
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(sql));
  ASSERT_OK_AND_ASSIGN(api::QueryResult streamed, cursor.FetchAll());
  EXPECT_EQ(streamed.tuples.num_tuples(), 0u);
  EXPECT_EQ(streamed.tuples.width(), sync.tuples.width());
  EXPECT_EQ(streamed.tuples.width(), streamed.column_names.size());
}

TEST_F(ApiTest, StreamAggregationDeliversMergedGroups) {
  api::Connection conn(db_.get());
  const char* sql = "SELECT a, SUM(b) FROM t GROUP BY a";
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, conn.Query(sql));
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(sql));
  ASSERT_OK_AND_ASSIGN(api::QueryResult streamed, cursor.FetchAll());
  EXPECT_EQ(streamed.tuples.num_tuples(), sync.tuples.num_tuples());
}

TEST_F(ApiTest, StreamSurfacesBindErrors) {
  api::Connection conn(db_.get());
  EXPECT_TRUE(conn.Stream("SELECT ghost FROM t").status().IsNotFound());
  EXPECT_FALSE(conn.Stream("INSERT INTO t VALUES (1, 2, 3)").ok());
}

TEST_F(ApiTest, StreamBackpressureBoundsMemory) {
  const size_t n = MakeBigTable();
  api::Connection::Settings settings;
  settings.stream_queue_chunks = 2;
  api::Connection conn(db_.get(), nullptr, settings);
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor,
                       conn.Stream("SELECT x FROM big"));
  uint64_t rows = 0;
  exec::TupleChunk chunk;
  while (true) {
    auto has = cursor.Next(&chunk);
    ASSERT_OK(has.status());
    if (!*has) break;
    rows += chunk.num_tuples();
  }
  EXPECT_EQ(rows, n);
  // The whole result is n values; the queue must have held well under half
  // of it at any instant (2-chunk capacity vs 7 output windows).
  EXPECT_LT(cursor.peak_buffered_bytes(), n * sizeof(Value) / 2);
}

TEST_F(ApiTest, DroppedCursorCancelsQuery) {
  MakeBigTable();
  api::Connection::Settings settings;
  settings.stream_queue_chunks = 1;  // the producer WILL block
  api::Connection conn(db_.get(), nullptr, settings);
  {
    ASSERT_OK_AND_ASSIGN(api::RowCursor cursor,
                         conn.Stream("SELECT x FROM big"));
    exec::TupleChunk chunk;
    auto has = cursor.Next(&chunk);
    ASSERT_OK(has.status());
    // Drop the cursor with the stream still open: must cancel cleanly, not
    // deadlock against the blocked producer.
  }
  // The connection keeps working afterwards.
  ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                       conn.Query("SELECT a FROM t WHERE a < 10"));
  EXPECT_GT(r.tuples.num_tuples(), 0u);
}

TEST_F(ApiTest, DroppedCursorUnregistersAndLogsCancelled) {
  // A drop-to-cancel stream must leave no trace in system.queries and a
  // status="cancelled" row (not "error") in system.query_log.
  MakeBigTable();
  const char* sql = "SELECT x FROM big WHERE x < 999";
  api::Connection::Settings settings;
  settings.stream_queue_chunks = 1;
  api::Connection conn(db_.get(), nullptr, settings);
  {
    ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(sql));
    exec::TupleChunk chunk;
    auto has = cursor.Next(&chunk);
    ASSERT_OK(has.status());
    // Mid-stream: the query is live and visible.
    bool live = false;
    for (const auto& row : obs::LiveQueryRegistry::Global().Snapshot()) {
      if (row.label == sql) live = true;
    }
    EXPECT_TRUE(live);
  }
  // The destructor waited for the query to leave the scheduler, so both
  // introspection surfaces are already settled.
  for (const auto& row : obs::LiveQueryRegistry::Global().Snapshot()) {
    EXPECT_NE(row.label, sql) << "cancelled query still in system.queries";
  }
  bool found = false;
  for (const obs::QueryLogEntry& e : obs::QueryLog::Global().Snapshot()) {
    if (e.label != sql) continue;
    found = true;
    EXPECT_EQ(e.status, "cancelled");
  }
  EXPECT_TRUE(found) << "cancelled query missing from system.query_log";
}

// --- PreparedStatement ------------------------------------------------------

TEST_F(ApiTest, PreparedMatchesUnpreparedAcrossParams) {
  api::Connection conn(db_.get());
  sql::Engine engine(db_.get());
  ASSERT_OK_AND_ASSIGN(
      api::PreparedStatement prepared,
      conn.Prepare("SELECT a, b FROM t WHERE a < ? AND b < ?"));
  EXPECT_EQ(prepared.param_count(), 2);
  EXPECT_EQ(prepared.column_names(),
            (std::vector<std::string>{"a", "b"}));
  for (Value alim : {Value{0}, Value{57}, Value{200}, Value{1000}}) {
    for (Value blim : {Value{3}, Value{7}}) {
      ASSERT_OK_AND_ASSIGN(api::QueryResult p,
                           prepared.Execute({alim, blim}));
      std::string sql = "SELECT a, b FROM t WHERE a < " +
                        std::to_string(alim) + " AND b < " +
                        std::to_string(blim);
      ASSERT_OK_AND_ASSIGN(sql::SqlResult u, engine.Execute(sql));
      EXPECT_EQ(p.tuples.num_tuples(), u.tuples.num_tuples()) << sql;
      EXPECT_EQ(p.stats.checksum, u.stats.checksum) << sql;
      EXPECT_EQ(p.tuples.num_tuples(), CountRef(alim, blim)) << sql;
    }
  }
}

TEST_F(ApiTest, PreparedParamValidation) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement prepared,
                       conn.Prepare("SELECT a FROM t WHERE a = ?"));
  EXPECT_TRUE(prepared.Execute({}).status().IsInvalidArgument());
  EXPECT_TRUE(prepared.Execute({1, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(prepared.Submit({}).Wait().status().IsInvalidArgument());
  // Parameterized statements cannot run un-prepared.
  EXPECT_TRUE(
      conn.Query("SELECT a FROM t WHERE a = ?").status().IsInvalidArgument());
  EXPECT_TRUE(conn.Submit("SELECT a FROM t WHERE a = ?")
                  .Wait()
                  .status()
                  .IsInvalidArgument());
  // Prepare validates eagerly.
  EXPECT_TRUE(conn.Prepare("SELECT a FROM missing WHERE a = ?")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(conn.Prepare("SELECT FROM t").ok());
}

TEST_F(ApiTest, PreparedBetweenParams) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(
      api::PreparedStatement prepared,
      conn.Prepare("SELECT a FROM t WHERE a BETWEEN ? AND ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult r, prepared.Execute({100, 199}));
  uint64_t expected = 0;
  for (Value v : a_) {
    if (v >= 100 && v <= 199) ++expected;
  }
  EXPECT_EQ(r.tuples.num_tuples(), expected);
}

TEST_F(ApiTest, PreparedSeesWritesBetweenExecutions) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement prepared,
                       conn.Prepare("SELECT COUNT(a) FROM t WHERE a = ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult before, prepared.Execute({100000}));
  // A global aggregate over zero matching rows emits no row.
  EXPECT_EQ(before.tuples.num_tuples(), 0u);
  ASSERT_OK(db_->Insert("t", {{100000, 1, 1}, {100000, 2, 2}}));
  ASSERT_OK_AND_ASSIGN(api::QueryResult after, prepared.Execute({100000}));
  ASSERT_EQ(after.tuples.num_tuples(), 1u);
  EXPECT_EQ(after.tuples.value(0, 0), 2);
}

TEST_F(ApiTest, PreparedSubmitAndStream) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(
      api::PreparedStatement prepared,
      conn.Prepare("SELECT a, b FROM t WHERE a < ? AND b < ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult sync, prepared.Execute({100, 6}));
  ASSERT_OK_AND_ASSIGN(api::QueryResult async,
                       prepared.Submit({100, 6}).Wait());
  EXPECT_EQ(async.stats.checksum, sync.stats.checksum);
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, prepared.Stream({100, 6}));
  ASSERT_OK_AND_ASSIGN(api::QueryResult streamed, cursor.FetchAll());
  EXPECT_EQ(streamed.tuples.num_tuples(), sync.tuples.num_tuples());
}

// Satellite: prepared-statement re-execution across a concurrent
// CompactTable — snapshot re-capture keeps results bit-identical before,
// during, and after compaction, at 1/2/4 workers.
TEST_F(ApiTest, PreparedAcrossConcurrentCompaction) {
  // Grow a write tail and delete a slice, so compaction has real work.
  std::vector<std::vector<Value>> rows;
  Random rng(17);
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({static_cast<Value>(rng.Uniform(500)),
                    static_cast<Value>(rng.Uniform(7)),
                    static_cast<Value>(rng.Uniform(100))});
  }
  ASSERT_OK(db_->Insert("t", rows));
  ASSERT_OK_AND_ASSIGN(uint64_t deleted,
                       db_->DeleteWhere("t", {{"b", codec::Predicate::Equal(3)}}));
  ASSERT_GT(deleted, 0u);

  // Ground truth from a quiesced serial run.
  sql::Engine engine(db_.get());
  const char* sql_form = "SELECT a, b FROM t WHERE a < 250 AND b < 5";
  ASSERT_OK_AND_ASSIGN(sql::SqlResult truth, engine.Execute(sql_form));

  for (int workers : kWorkerCounts) {
    api::Connection::Settings settings;
    settings.num_workers = workers;
    api::Connection conn(db_.get(), nullptr, settings);
    ASSERT_OK_AND_ASSIGN(
        api::PreparedStatement prepared,
        conn.Prepare("SELECT a, b FROM t WHERE a < ? AND b < ?"));

    // Fire a compaction concurrently with a burst of re-executions. The
    // writers are quiescent, so every snapshot the statement captures —
    // old generation, mid-swap, new generation — must produce the same
    // result bag.
    std::atomic<bool> compacted{false};
    std::thread compactor([&] {
      auto moved = db_->CompactTable("t");
      EXPECT_TRUE(moved.ok()) << moved.status().ToString();
      compacted.store(true);
    });
    int executions = 0;
    while (!compacted.load() || executions < 20) {
      ASSERT_OK_AND_ASSIGN(api::QueryResult r, prepared.Execute({250, 5}));
      EXPECT_EQ(r.tuples.num_tuples(), truth.tuples.num_tuples())
          << "workers=" << workers << " execution=" << executions;
      EXPECT_EQ(r.stats.checksum, truth.stats.checksum)
          << "workers=" << workers << " execution=" << executions;
      ++executions;
    }
    compactor.join();
    // And after the swap, with the new generation's readers.
    ASSERT_OK_AND_ASSIGN(api::QueryResult after, prepared.Execute({250, 5}));
    EXPECT_EQ(after.stats.checksum, truth.stats.checksum);
  }
}

// --- UPDATE -----------------------------------------------------------------

TEST_F(ApiTest, UpdateEndToEnd) {
  api::Connection conn(db_.get());
  uint64_t expected = 0;
  for (size_t i = 0; i < a_.size(); ++i) {
    if (a_[i] < 10 && b_[i] < 3) ++expected;
  }
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult upd,
      conn.Query("UPDATE t SET b = 99, c = 1 WHERE a < 10 AND b < 3"));
  EXPECT_TRUE(upd.is_write);
  EXPECT_EQ(upd.rows_affected, expected);
  EXPECT_EQ(upd.column_names, (std::vector<std::string>{"rows_updated"}));

  // The rewritten rows carry the new values; no row was lost or duplicated.
  ASSERT_OK_AND_ASSIGN(api::QueryResult hit,
                       conn.Query("SELECT b, c FROM t WHERE b = 99"));
  EXPECT_EQ(hit.tuples.num_tuples(), expected);
  for (size_t i = 0; i < hit.tuples.num_tuples(); ++i) {
    EXPECT_EQ(hit.tuples.value(i, 1), 1);
  }
  ASSERT_OK_AND_ASSIGN(api::QueryResult gone,
                       conn.Query("SELECT a FROM t WHERE a < 10 AND b < 3"));
  EXPECT_EQ(gone.tuples.num_tuples(), 0u);
  ASSERT_OK_AND_ASSIGN(api::QueryResult total,
                       conn.Query("SELECT COUNT(a) FROM t"));
  EXPECT_EQ(static_cast<size_t>(total.tuples.value(0, 0)), a_.size());
}

TEST_F(ApiTest, UpdateValidation) {
  api::Connection conn(db_.get());
  EXPECT_TRUE(
      conn.Query("UPDATE missing SET a = 1").status().IsNotFound());
  EXPECT_TRUE(
      conn.Query("UPDATE t SET ghost = 1").status().IsNotFound());
  EXPECT_TRUE(conn.Query("UPDATE t SET a = 1 WHERE ghost < 5")
                  .status()
                  .IsNotFound());
  // Double assignment of one column is rejected at parse time.
  EXPECT_FALSE(conn.Query("UPDATE t SET a = 1, a = 2").ok());
}

TEST_F(ApiTest, UpdateIsSnapshotAtomic) {
  // A snapshot captured before the update sees none of it; one captured
  // after sees all of it (delete + re-insert commit together).
  ASSERT_OK_AND_ASSIGN(auto before, db_->SnapshotTable("t"));
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::QueryResult upd,
                       conn.Query("UPDATE t SET c = 77 WHERE b = 2"));
  ASSERT_GT(upd.rows_affected, 0u);
  ASSERT_OK_AND_ASSIGN(auto after, db_->SnapshotTable("t"));
  EXPECT_EQ(before->total_rows() + upd.rows_affected, after->total_rows());
  EXPECT_EQ(before->deleted().size() + upd.rows_affected,
            after->deleted().size());
}

TEST_F(ApiTest, PreparedUpdateWithParams) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement upd,
                       conn.Prepare("UPDATE t SET b = ? WHERE a = ?"));
  EXPECT_TRUE(upd.is_write());
  EXPECT_EQ(upd.param_count(), 2);
  uint64_t expected = 0;
  for (Value v : a_) {
    if (v == 42) ++expected;
  }
  ASSERT_GT(expected, 0u);
  ASSERT_OK_AND_ASSIGN(api::QueryResult r, upd.Execute({500, 42}));
  EXPECT_EQ(r.rows_affected, expected);
  ASSERT_OK_AND_ASSIGN(api::QueryResult check,
                       conn.Query("SELECT COUNT(a) FROM t WHERE b = 500"));
  ASSERT_EQ(check.tuples.num_tuples(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(check.tuples.value(0, 0)), expected);
  // Streaming a write statement is rejected.
  EXPECT_FALSE(upd.Stream({1, 2}).ok());
}

TEST_F(ApiTest, PreparedInsertAndDeleteWithParams) {
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement ins,
                       conn.Prepare("INSERT INTO t VALUES (?, ?, ?)"));
  for (Value v = 0; v < 5; ++v) {
    ASSERT_OK_AND_ASSIGN(api::QueryResult r,
                         ins.Execute({777000 + v, v, v}));
    EXPECT_EQ(r.rows_affected, 1u);
  }
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult n,
      conn.Query("SELECT COUNT(a) FROM t WHERE a >= 777000"));
  EXPECT_EQ(n.tuples.value(0, 0), 5);
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement del,
                       conn.Prepare("DELETE FROM t WHERE a = ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult d, del.Execute({777003}));
  EXPECT_EQ(d.rows_affected, 1u);
  ASSERT_OK_AND_ASSIGN(
      n, conn.Query("SELECT COUNT(a) FROM t WHERE a >= 777000"));
  EXPECT_EQ(n.tuples.value(0, 0), 4);
}

TEST_F(ApiTest, ConcurrentUpdatesDoNotDuplicateRows) {
  // Scan-then-apply mutations serialize per table: racing UPDATEs of the
  // same rows must each rewrite the *latest* images, never re-insert a row
  // twice (and never resurrect concurrently deleted rows).
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::QueryResult before,
                       conn.Query("SELECT COUNT(a) FROM t"));
  const int kThreads = 4;
  const int kRounds = 8;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      api::Connection worker_conn(db_.get());
      for (int r = 0; r < kRounds; ++r) {
        auto upd = worker_conn.Query(
            "UPDATE t SET c = " + std::to_string(w * 100 + r) +
            " WHERE a < 20");
        if (!upd.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_OK_AND_ASSIGN(api::QueryResult after,
                       conn.Query("SELECT COUNT(a) FROM t"));
  EXPECT_EQ(after.tuples.value(0, 0), before.tuples.value(0, 0));
}

TEST_F(ApiTest, ExtremeParameterValuesAreSafe) {
  // `?` accepts any int64; bounds folding must not overflow at the domain
  // edges (v < INT64_MIN matches nothing, v > INT64_MAX matches nothing).
  api::Connection conn(db_.get());
  const Value kMin = std::numeric_limits<Value>::min();
  const Value kMax = std::numeric_limits<Value>::max();
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement lt,
                       conn.Prepare("SELECT a FROM t WHERE a < ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult none, lt.Execute({kMin}));
  EXPECT_EQ(none.tuples.num_tuples(), 0u);
  ASSERT_OK_AND_ASSIGN(api::QueryResult all, lt.Execute({kMax}));
  EXPECT_EQ(all.tuples.num_tuples(), a_.size());
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement gt,
                       conn.Prepare("SELECT a FROM t WHERE a > ?"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult none2, gt.Execute({kMax}));
  EXPECT_EQ(none2.tuples.num_tuples(), 0u);
  ASSERT_OK_AND_ASSIGN(api::QueryResult all2, gt.Execute({kMin}));
  EXPECT_EQ(all2.tuples.num_tuples(), a_.size());
}

// --- Join-side snapshot merge -----------------------------------------------

TEST_F(ApiTest, JoinMergesInnerSnapshotWithPendingWrites) {
  // orders ⋈ customer; customer gains uncompacted writes the hash build
  // must merge (this used to be a NotSupported guard — now it's correct
  // results under live writes).
  std::vector<Value> custkey{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<Value> nation{10, 11, 12, 13, 14, 15, 16, 17};
  std::vector<Value> o_cust{0, 1, 2, 3, 0, 1, 2, 3, 4, 5};
  std::vector<Value> o_ship{100, 101, 102, 103, 104, 105, 106, 107, 108, 109};
  ASSERT_OK(db_->CreateColumn("cust.key", codec::Encoding::kUncompressed,
                              custkey));
  ASSERT_OK(db_->CreateColumn("cust.nation", codec::Encoding::kUncompressed,
                              nation));
  ASSERT_OK(db_->CreateColumn("ord.cust", codec::Encoding::kUncompressed,
                              o_cust));
  ASSERT_OK(db_->CreateColumn("ord.ship", codec::Encoding::kUncompressed,
                              o_ship));
  ASSERT_OK(db_->RegisterTable(
      "customer", {{"key", "cust.key"}, {"nation", "cust.nation"}}));

  plan::JoinQuery join;
  ASSERT_OK_AND_ASSIGN(join.left_key, db_->GetColumn("ord.cust"));
  ASSERT_OK_AND_ASSIGN(join.left_payload, db_->GetColumn("ord.ship"));
  ASSERT_OK_AND_ASSIGN(join.right_key, db_->GetColumn("cust.key"));
  ASSERT_OK_AND_ASSIGN(join.right_payload, db_->GetColumn("cust.nation"));
  join.left_pred = codec::Predicate::LessThan(100);

  // Empty snapshot: bit-identical to no snapshot at all.
  ASSERT_OK_AND_ASSIGN(join.right_snapshot, db_->SnapshotTable("customer"));
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult clean,
      db_->RunJoin(join, exec::JoinRightMode::kMaterialized));
  EXPECT_EQ(clean.tuples.num_tuples(), o_cust.size());

  // UPDATE moves customer 5's row to the write-store tail (old position
  // deleted); DELETE drops customer 4. A fresh inner snapshot sees both.
  ASSERT_OK_AND_ASSIGN(
      uint64_t updated,
      db_->UpdateWhere("customer", {{"nation", 99}},
                       {{"key", codec::Predicate::Equal(5)}}));
  EXPECT_EQ(updated, 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t deleted,
                       db_->DeleteWhere("customer",
                                        {{"key", codec::Predicate::Equal(4)}}));
  EXPECT_EQ(deleted, 1u);
  ASSERT_OK_AND_ASSIGN(join.right_snapshot, db_->SnapshotTable("customer"));

  for (exec::JoinRightMode mode :
       {exec::JoinRightMode::kMaterialized, exec::JoinRightMode::kMultiColumn,
        exec::JoinRightMode::kSingleColumn}) {
    ASSERT_OK_AND_ASSIGN(api::QueryResult r, db_->RunJoin(join, mode));
    // One order row (custkey 4) lost its match; key 5 now maps to 99.
    EXPECT_EQ(r.tuples.num_tuples(), o_cust.size() - 1)
        << JoinRightModeName(mode);
    std::map<Value, Value> seen;  // left payload → right payload
    for (size_t i = 0; i < r.tuples.num_tuples(); ++i) {
      seen[r.tuples.value(i, 0)] = r.tuples.value(i, 1);
    }
    EXPECT_EQ(seen.count(108), 0u) << JoinRightModeName(mode);  // deleted
    EXPECT_EQ(seen[109], 99) << JoinRightModeName(mode);        // updated
    EXPECT_EQ(seen[100], 10) << JoinRightModeName(mode);
  }

  // The scheduler path (build barrier + probe morsels) agrees.
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(
      api::QueryResult via_submit,
      conn.Submit(plan::PlanTemplate::Join(
                      join, exec::JoinRightMode::kMaterialized, {}))
          .Wait());
  EXPECT_EQ(via_submit.tuples.num_tuples(), o_cust.size() - 1);

  // Without the snapshot the build still reads the read store alone.
  join.right_snapshot.reset();
  ASSERT_OK_AND_ASSIGN(api::QueryResult stale,
                       db_->RunJoin(join,
                                    exec::JoinRightMode::kMaterialized));
  EXPECT_EQ(stale.tuples.num_tuples(), o_cust.size());
}

// --- Explain with parameters ------------------------------------------------

TEST_F(ApiTest, ExplainAcceptsParameters) {
  api::Connection conn(db_.get());
  // Parameterless EXPLAIN keeps working as before.
  ASSERT_OK_AND_ASSIGN(std::string plain,
                       conn.Explain("SELECT a, b FROM t WHERE a < 100"));
  EXPECT_NE(plain.find("<- chosen"), std::string::npos);

  // `?` parameters bind like a prepared execution; the report reflects the
  // bound predicate's selectivity.
  const char* sql = "SELECT a, b FROM t WHERE a < ? AND b < ?";
  ASSERT_OK_AND_ASSIGN(std::string narrow,
                       conn.Explain(sql, std::vector<Value>{5, 3}));
  ASSERT_OK_AND_ASSIGN(std::string wide,
                       conn.Explain(sql, std::vector<Value>{490, 7}));
  EXPECT_NE(narrow.find("<- chosen"), std::string::npos);
  EXPECT_NE(narrow, wide);  // different selectivities, different report

  // Parameter counts must match exactly, as in a prepared execution.
  EXPECT_FALSE(conn.Explain(sql, std::vector<Value>{5}).ok());
  EXPECT_FALSE(conn.Explain(sql, std::vector<Value>{5, 3, 9}).ok());
  EXPECT_FALSE(conn.Explain(sql).ok());
  // Writes are not explainable.
  EXPECT_FALSE(conn.Explain("DELETE FROM t WHERE a < 5").ok());
}

// --- RowCursor::TryNext -----------------------------------------------------

TEST_F(ApiTest, TryNextDrainsWithoutBlocking) {
  const size_t n = MakeBigTable();
  api::Connection conn(db_.get());
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor,
                       conn.Stream("SELECT x FROM big WHERE x < 900"));
  uint64_t rows = 0;
  uint64_t pending_polls = 0;
  exec::TupleChunk chunk;
  while (true) {
    ASSERT_OK_AND_ASSIGN(api::RowCursor::Poll poll, cursor.TryNext(&chunk));
    if (poll == api::RowCursor::Poll::kDone) break;
    if (poll == api::RowCursor::Poll::kPending) {
      // Event-loop turn: nothing buffered yet; yield and poll again.
      ++pending_polls;
      std::this_thread::yield();
      continue;
    }
    rows += chunk.num_tuples();
  }
  EXPECT_EQ(rows, n * 900 / 1000);
  // Once done, further polls stay done.
  ASSERT_OK_AND_ASSIGN(api::RowCursor::Poll again, cursor.TryNext(&chunk));
  EXPECT_EQ(again, api::RowCursor::Poll::kDone);
  ASSERT_OK_AND_ASSIGN(api::QueryResult rest, cursor.FetchAll());
  EXPECT_EQ(rest.tuples.num_tuples(), 0u);
}

TEST_F(ApiTest, TryNextSurfacesQueryError) {
  api::Connection conn(db_.get());
  // A query that fails at execution: LM-pipelined position-filtering over a
  // bit-vector column is unsupported, and the failure surfaces mid-run.
  std::vector<Value> bv = testing::RunnyValues(80000, 3, 2.0, 9);
  ASSERT_OK(db_->CreateColumn("bv.y", codec::Encoding::kBitVector, bv));
  ASSERT_OK(db_->RegisterTable("bv", {{"y", "bv.y"}}));
  plan::SelectionQuery q;
  ASSERT_OK_AND_ASSIGN(const codec::ColumnReader* y, db_->GetColumn("bv.y"));
  q.columns.push_back({y, codec::Predicate::LessThan(2)});
  q.columns.push_back({y, codec::Predicate::LessThan(2)});
  plan::PlanConfig config;
  config.use_sorted_index = false;
  auto tmpl =
      plan::PlanTemplate::Selection(q, plan::Strategy::kLmPipelined, config);
  ASSERT_OK_AND_ASSIGN(api::RowCursor cursor, conn.Stream(tmpl));
  exec::TupleChunk chunk;
  // Poll to completion; the plan error must surface through TryNext.
  Status final_status = Status::OK();
  while (true) {
    Result<api::RowCursor::Poll> poll = cursor.TryNext(&chunk);
    if (!poll.ok()) {
      final_status = poll.status();
      break;
    }
    if (*poll == api::RowCursor::Poll::kDone) break;
    if (*poll == api::RowCursor::Poll::kPending) std::this_thread::yield();
  }
  EXPECT_FALSE(final_status.ok());
}

// --- Shared statement cache -------------------------------------------------

TEST_F(ApiTest, StatementCacheMatchesUncachedPrepare) {
  api::StatementCache cache;
  api::Connection plain(db_.get());
  api::Connection cached(db_.get());
  cached.ShareCostCache(plain);
  cached.set_statement_cache(&cache);
  const char* statements[] = {
      "SELECT a, b FROM t WHERE a < ? AND b < ?",
      "SELECT a, SUM(b) FROM t WHERE b < ? GROUP BY a",
      "SELECT COUNT(b) FROM t WHERE a < ?",
  };
  for (const char* sql : statements) {
    ASSERT_OK_AND_ASSIGN(api::PreparedStatement p1, plain.Prepare(sql));
    ASSERT_OK_AND_ASSIGN(api::PreparedStatement p2, cached.Prepare(sql));
    EXPECT_EQ(p1.param_count(), p2.param_count()) << sql;
    EXPECT_EQ(p1.column_names(), p2.column_names()) << sql;
    std::vector<Value> params;
    for (int i = 0; i < p1.param_count(); ++i) params.push_back(100);
    ASSERT_OK_AND_ASSIGN(api::QueryResult r1, p1.Execute(params));
    ASSERT_OK_AND_ASSIGN(api::QueryResult r2, p2.Execute(params));
    EXPECT_EQ(r1.stats.checksum, r2.stats.checksum) << sql;
    EXPECT_EQ(r1.tuples.num_tuples(), r2.tuples.num_tuples()) << sql;
  }
  // Second pass over the same statements: every Prepare is now a hit.
  api::StatementCache::Stats before = cache.stats();
  EXPECT_EQ(before.misses, 3u);
  for (const char* sql : statements) {
    ASSERT_OK_AND_ASSIGN(api::PreparedStatement p, cached.Prepare(sql));
    (void)p;
  }
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, before.hits + 3u);
}

TEST_F(ApiTest, StatementCacheErrorsAreNotCached) {
  api::StatementCache cache;
  api::Connection conn(db_.get());
  conn.set_statement_cache(&cache);
  EXPECT_FALSE(conn.Prepare("SELECT nope FROM t").ok());
  EXPECT_FALSE(conn.Prepare("SELECT a FROM missing WHERE a < 1").ok());
  EXPECT_EQ(cache.size(), 0u);
  // A failing statement becomes valid once the catalog catches up.
  std::vector<Value> x(1000, 5);
  ASSERT_OK(db_->CreateColumn("late.x", codec::Encoding::kUncompressed, x));
  ASSERT_OK(db_->RegisterTable("late", {{"x", "late.x"}}));
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement p,
                       conn.Prepare("SELECT x FROM late WHERE x < 9"));
  ASSERT_OK_AND_ASSIGN(api::QueryResult r, p.Execute());
  EXPECT_EQ(r.tuples.num_tuples(), 1000u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ApiTest, StatementCacheEvictsFifoPerStripe) {
  // One stripe, two slots: the third distinct statement evicts the first.
  api::StatementCache cache(/*num_stripes=*/1, /*max_entries_per_stripe=*/2);
  api::Connection conn(db_.get());
  conn.set_statement_cache(&cache);
  const char* statements[] = {
      "SELECT a FROM t WHERE a < 10",
      "SELECT b FROM t WHERE b < 3",
      "SELECT c FROM t WHERE c < 50",
  };
  for (const char* sql : statements) {
    ASSERT_OK_AND_ASSIGN(api::PreparedStatement p, conn.Prepare(sql));
    (void)p;
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted statement re-parses (a miss), and still runs correctly.
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement p,
                       conn.Prepare(statements[0]));
  EXPECT_EQ(cache.stats().misses, 4u);
  ASSERT_OK_AND_ASSIGN(api::QueryResult r, p.Execute());
  EXPECT_EQ(r.stats.output_tuples, r.tuples.num_tuples());
}

TEST_F(ApiTest, StatementCacheConcurrentSessionsSingleParse) {
  // N sessions race Prepare+Execute of one SQL text through a shared cache:
  // results must be bit-identical to the uncached serial run, and the cache
  // must have parsed exactly once (the single-parse guarantee).
  api::StatementCache cache;
  api::Connection root(db_.get());
  const char* sql = "SELECT a, SUM(b) FROM t WHERE a < ? GROUP BY a";
  ASSERT_OK_AND_ASSIGN(api::PreparedStatement truth_stmt, root.Prepare(sql));
  ASSERT_OK_AND_ASSIGN(api::QueryResult truth, truth_stmt.Execute({250}));

  constexpr int kThreads = 8;
  constexpr int kIters = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      api::Connection conn(db_.get());
      conn.ShareCostCache(root);
      conn.set_statement_cache(&cache);
      for (int i = 0; i < kIters; ++i) {
        auto p = conn.Prepare(sql);
        if (!p.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto r = p->Execute({250});
        if (!r.ok() || r->stats.checksum != truth.stats.checksum ||
            r->tuples.num_tuples() != truth.tuples.num_tuples()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  api::StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // one parse for kThreads * kIters prepares
  EXPECT_EQ(stats.hits, uint64_t{kThreads} * kIters - 1u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace cstore
