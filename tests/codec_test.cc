// Codec tests: write/read round-trips for all encodings, predicate
// evaluation fast paths, positional gathers, and metadata integrity.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "codec/column_reader.h"
#include "codec/column_writer.h"
#include "position/position_set.h"
#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "test_util.h"

namespace cstore {
namespace {

using codec::ColumnReader;
using codec::ColumnWriter;
using codec::Encoding;
using codec::Predicate;
using testing::TempDir;

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fm = storage::FileManager::Open(dir_.path());
    ASSERT_TRUE(fm.ok());
    files_ = std::move(fm).value();
    pool_ = std::make_unique<storage::BufferPool>(files_.get(), 512);
  }

  std::unique_ptr<ColumnReader> WriteAndOpen(const std::string& name,
                                             Encoding enc,
                                             const std::vector<Value>& vals) {
    auto writer_r = ColumnWriter::Create(files_.get(), name, enc);
    EXPECT_TRUE(writer_r.ok());
    auto writer = std::move(writer_r).value();
    for (Value v : vals) {
      Status st = writer->Append(v);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    auto meta_r = writer->Finish();
    EXPECT_TRUE(meta_r.ok()) << meta_r.status().ToString();
    auto reader_r = ColumnReader::Open(files_.get(), pool_.get(), name);
    EXPECT_TRUE(reader_r.ok()) << reader_r.status().ToString();
    return std::move(reader_r).value();
  }

  std::vector<Value> ReadAll(const ColumnReader& reader) {
    std::vector<Value> out;
    for (uint64_t b = 0; b < reader.num_blocks(); ++b) {
      auto blk = reader.FetchBlock(b);
      EXPECT_TRUE(blk.ok());
      blk->view.Decompress(&out);
    }
    return out;
  }

  TempDir dir_;
  std::unique_ptr<storage::FileManager> files_;
  std::unique_ptr<storage::BufferPool> pool_;
};

TEST_F(CodecTest, UncompressedRoundTripSmall) {
  std::vector<Value> vals = {5, -3, 0, 42, 1000000007, -9};
  auto reader = WriteAndOpen("c1", Encoding::kUncompressed, vals);
  EXPECT_EQ(reader->num_values(), vals.size());
  EXPECT_EQ(ReadAll(*reader), vals);
  EXPECT_EQ(reader->meta().min_value, -9);
  EXPECT_EQ(reader->meta().max_value, 1000000007);
}

TEST_F(CodecTest, UncompressedRoundTripMultiBlock) {
  // > 8128 values forces multiple blocks.
  std::vector<Value> vals = testing::RunnyValues(30000, 1000, 1.0, 7);
  auto reader = WriteAndOpen("c2", Encoding::kUncompressed, vals);
  EXPECT_GT(reader->num_blocks(), 1u);
  EXPECT_EQ(ReadAll(*reader), vals);
}

TEST_F(CodecTest, RleRoundTrip) {
  std::vector<Value> vals = testing::SortedRunnyValues(50000, 40, 100.0, 11);
  auto reader = WriteAndOpen("c3", Encoding::kRle, vals);
  EXPECT_EQ(ReadAll(*reader), vals);
  // RLE should be tiny: 50k values with avg run 100 → ~500 runs, 1 block.
  EXPECT_EQ(reader->num_blocks(), 1u);
  EXPECT_GT(reader->meta().AverageRunLength(), 10.0);
}

TEST_F(CodecTest, RleManyRunsSpansBlocks) {
  // Alternating values → every run has length 1; 10000 runs > 2729/block.
  std::vector<Value> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i % 2);
  auto reader = WriteAndOpen("c4", Encoding::kRle, vals);
  EXPECT_GT(reader->num_blocks(), 1u);
  EXPECT_EQ(ReadAll(*reader), vals);
}

TEST_F(CodecTest, DictRoundTrip) {
  std::vector<Value> vals = testing::RunnyValues(100000, 300, 2.0, 14);
  auto reader = WriteAndOpen("cd", Encoding::kDict, vals);
  EXPECT_EQ(ReadAll(*reader), vals);
  // 16384 positions per block: 100000/16384 → 7 blocks.
  EXPECT_EQ(reader->num_blocks(), 7u);
}

TEST_F(CodecTest, DictTooManyDistinctPerBlockFails) {
  auto writer_r = ColumnWriter::Create(files_.get(), "cdx", Encoding::kDict);
  ASSERT_TRUE(writer_r.ok());
  auto writer = std::move(writer_r).value();
  Status st = Status::OK();
  for (Value v = 0; v < 20000 && st.ok(); ++v) {
    st = writer->Append(v);  // all distinct: 16384 distinct in one block
  }
  if (st.ok()) st = writer->Finish().status();
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
}

TEST_F(CodecTest, BitVectorRoundTrip) {
  std::vector<Value> vals = testing::RunnyValues(100000, 7, 1.0, 13);
  auto reader = WriteAndOpen("c5", Encoding::kBitVector, vals);
  EXPECT_EQ(ReadAll(*reader), vals);
  EXPECT_EQ(reader->meta().num_distinct, 7u);
}

TEST_F(CodecTest, BitVectorHighCardinalityShrinksBlocks) {
  // 100 distinct values: the writer must shrink the per-block position
  // count to fit 100 bit-strings.
  std::vector<Value> vals = testing::RunnyValues(80000, 100, 1.0, 17);
  auto reader = WriteAndOpen("c6", Encoding::kBitVector, vals);
  EXPECT_EQ(ReadAll(*reader), vals);
}

TEST_F(CodecTest, BitVectorAllDistinctShrinksToMinimumBlocks) {
  // Worst case for bit-vector encoding: every value distinct. The writer
  // adaptively shrinks blocks (down to 512 positions) so the k bit-strings
  // still fit; the data must round-trip even though the encoding degrades
  // to many small blocks.
  std::vector<Value> vals;
  for (Value v = 0; v < 40000; ++v) vals.push_back(v);
  auto reader = WriteAndOpen("c7", Encoding::kBitVector, vals);
  EXPECT_GE(reader->num_blocks(), 40000u / codec::kBitVectorDefaultPositions);
  EXPECT_EQ(ReadAll(*reader), vals);
}

TEST_F(CodecTest, ValueAtRandomAccess) {
  for (Encoding enc : {Encoding::kUncompressed, Encoding::kRle,
                       Encoding::kBitVector, Encoding::kDict}) {
    std::vector<Value> vals = testing::RunnyValues(20000, 6, 8.0, 23);
    auto reader = WriteAndOpen(
        std::string("va") + codec::EncodingName(enc), enc, vals);
    Random rng(99);
    for (int i = 0; i < 500; ++i) {
      Position p = rng.Uniform(vals.size());
      auto v = reader->ValueAt(p);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, vals[p]) << "encoding " << codec::EncodingName(enc)
                             << " pos " << p;
    }
  }
}

TEST_F(CodecTest, ValueAtOutOfRange) {
  std::vector<Value> vals = {1, 2, 3};
  auto reader = WriteAndOpen("oor", Encoding::kUncompressed, vals);
  EXPECT_FALSE(reader->ValueAt(3).ok());
}

TEST_F(CodecTest, BlockStartPositionsIndex) {
  std::vector<Value> vals = testing::RunnyValues(40000, 1000, 1.0, 31);
  auto reader = WriteAndOpen("idx", Encoding::kUncompressed, vals);
  const auto& meta = reader->meta();
  ASSERT_EQ(meta.block_start_pos.size(), meta.num_blocks);
  EXPECT_EQ(meta.block_start_pos[0], 0u);
  for (Position p : {Position{0}, Position{8127}, Position{8128},
                     Position{39999}}) {
    uint64_t b = meta.BlockContaining(p);
    EXPECT_LE(meta.block_start_pos[b], p);
    if (b + 1 < meta.num_blocks) {
      EXPECT_LT(p, meta.block_start_pos[b + 1]);
    }
  }
}

// --- Predicate evaluation across encodings (property test) ---

struct PredEvalCase {
  Encoding encoding;
  double run_len;
  int domain;
};

class PredicateEvalTest
    : public CodecTest,
      public ::testing::WithParamInterface<PredEvalCase> {};

TEST_P(PredicateEvalTest, MatchesNaiveScan) {
  const PredEvalCase& p = GetParam();
  std::vector<Value> vals =
      testing::RunnyValues(70000, p.domain, p.run_len, 37);
  auto reader = WriteAndOpen("pe", p.encoding, vals);

  const Predicate preds[] = {
      Predicate::LessThan(p.domain / 2),
      Predicate::Equal(1),
      Predicate::GreaterEqual(p.domain - 1),
      Predicate::Between(1, p.domain / 3),
      Predicate::True(),
      Predicate::LessThan(-5),  // empty result
  };
  for (const Predicate& pred : preds) {
    std::vector<Position> expected = testing::NaiveMatches(vals, pred);
    // Evaluate block by block, accumulating positions.
    std::vector<Position> got;
    for (uint64_t b = 0; b < reader->num_blocks(); ++b) {
      auto blk = reader->FetchBlock(b);
      ASSERT_TRUE(blk.ok());
      Position s = blk->view.start_pos();
      Position e = blk->view.end_pos();
      position::PositionSet result = position::PositionSet::Empty(s, e);
      if (blk->view.PredicateNeedsBitmap()) {
        position::Bitmap bm(s, e - s);
        blk->view.EvalPredicate(pred, nullptr, &bm);
        result = position::PositionSet::FromBitmap(std::move(bm));
      } else {
        position::SetBuilder builder(s, e);
        blk->view.EvalPredicate(pred, &builder, nullptr);
        result = std::move(builder).Build();
      }
      result.ForEachPosition([&](Position pos) { got.push_back(pos); });
    }
    EXPECT_EQ(got, expected) << "pred " << pred.ToString() << " on "
                             << codec::EncodingName(p.encoding);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, PredicateEvalTest,
    ::testing::Values(PredEvalCase{Encoding::kUncompressed, 1.0, 50},
                      PredEvalCase{Encoding::kUncompressed, 20.0, 10},
                      PredEvalCase{Encoding::kRle, 50.0, 12},
                      PredEvalCase{Encoding::kRle, 2.0, 5},
                      PredEvalCase{Encoding::kBitVector, 1.0, 7},
                      PredEvalCase{Encoding::kBitVector, 10.0, 12},
                      PredEvalCase{Encoding::kDict, 1.0, 200},
                      PredEvalCase{Encoding::kDict, 5.0, 40}));

// --- GatherValues across encodings ---

class GatherTest : public CodecTest,
                   public ::testing::WithParamInterface<Encoding> {};

TEST_P(GatherTest, GatherMatchesNaive) {
  Encoding enc = GetParam();
  std::vector<Value> vals = testing::RunnyValues(50000, 7, 10.0, 41);
  auto reader = WriteAndOpen("ga", enc, vals);

  // Select a scattered set of positions.
  Random rng(5);
  position::PosList pl;
  std::vector<Position> sel_vec;
  for (Position p = 0; p < vals.size(); ++p) {
    if (rng.Bernoulli(0.13)) {
      pl.Append(p);
      sel_vec.push_back(p);
    }
  }
  position::PositionSet sel =
      position::PositionSet::FromList(0, vals.size(), std::move(pl));

  std::vector<Value> got;
  for (uint64_t b = 0; b < reader->num_blocks(); ++b) {
    auto blk = reader->FetchBlock(b);
    ASSERT_TRUE(blk.ok());
    blk->view.GatherValues(sel, &got);
  }
  ASSERT_EQ(got.size(), sel_vec.size());
  for (size_t i = 0; i < sel_vec.size(); ++i) {
    EXPECT_EQ(got[i], vals[sel_vec[i]]) << "i=" << i;
  }

  // ForEachValueAt agrees.
  std::vector<Value> got2;
  std::vector<Position> pos2;
  for (uint64_t b = 0; b < reader->num_blocks(); ++b) {
    auto blk = reader->FetchBlock(b);
    ASSERT_TRUE(blk.ok());
    blk->view.ForEachValueAt(sel, [&](Position p, Value v) {
      pos2.push_back(p);
      got2.push_back(v);
    });
  }
  EXPECT_EQ(got2, got);
  EXPECT_EQ(pos2, sel_vec);
}

INSTANTIATE_TEST_SUITE_P(Encodings, GatherTest,
                         ::testing::Values(Encoding::kUncompressed,
                                           Encoding::kRle,
                                           Encoding::kBitVector,
                                           Encoding::kDict));

TEST_F(CodecTest, MetaSerializationRoundTrip) {
  codec::ColumnMeta meta;
  meta.encoding = Encoding::kRle;
  meta.num_values = 12345;
  meta.num_blocks = 3;
  meta.min_value = -7;
  meta.max_value = 99;
  meta.num_distinct = 42;
  meta.num_runs = 321;
  meta.sorted = true;
  meta.block_start_pos = {0, 5000, 10000};
  meta.block_first_value = {-7, 13, 57};
  auto bytes = meta.Serialize();
  auto back = codec::ColumnMeta::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->encoding, meta.encoding);
  EXPECT_EQ(back->num_values, meta.num_values);
  EXPECT_EQ(back->num_blocks, meta.num_blocks);
  EXPECT_EQ(back->min_value, meta.min_value);
  EXPECT_EQ(back->max_value, meta.max_value);
  EXPECT_EQ(back->num_distinct, meta.num_distinct);
  EXPECT_EQ(back->num_runs, meta.num_runs);
  EXPECT_EQ(back->sorted, meta.sorted);
  EXPECT_EQ(back->block_start_pos, meta.block_start_pos);
  EXPECT_EQ(back->block_first_value, meta.block_first_value);
}

// --- Sorted-column index lookups (Section 2.1.1) ---

class IndexLookupTest : public CodecTest,
                        public ::testing::WithParamInterface<Encoding> {};

TEST_P(IndexLookupTest, PositionRangeMatchesNaiveScan) {
  Encoding enc = GetParam();
  std::vector<Value> vals = testing::SortedRunnyValues(60000, 12, 40.0, 71);
  auto reader = WriteAndOpen(
      std::string("ix") + codec::EncodingName(enc), enc, vals);
  ASSERT_TRUE(reader->meta().sorted);

  const Predicate preds[] = {
      Predicate::LessThan(6),     Predicate::LessEqual(6),
      Predicate::Equal(3),        Predicate::GreaterEqual(9),
      Predicate::GreaterThan(9),  Predicate::Between(2, 7),
      Predicate::LessThan(-1),    Predicate::GreaterThan(100),
      Predicate::Equal(100),      Predicate::True(),
  };
  for (const Predicate& pred : preds) {
    ASSERT_TRUE(reader->SupportsIndexLookup(pred)) << pred.ToString();
    auto range = reader->PositionRangeFor(pred);
    ASSERT_TRUE(range.ok()) << pred.ToString();
    std::vector<Position> expected = testing::NaiveMatches(vals, pred);
    if (expected.empty()) {
      EXPECT_TRUE(range->empty()) << pred.ToString();
    } else {
      EXPECT_EQ(range->begin, expected.front()) << pred.ToString();
      EXPECT_EQ(range->end, expected.back() + 1) << pred.ToString();
      EXPECT_EQ(range->length(), expected.size()) << pred.ToString();
    }
  }
  // NotEqual cannot be one range.
  EXPECT_FALSE(reader->SupportsIndexLookup(Predicate::NotEqual(3)));
  EXPECT_FALSE(reader->PositionRangeFor(Predicate::NotEqual(3)).ok());
}

INSTANTIATE_TEST_SUITE_P(Encodings, IndexLookupTest,
                         ::testing::Values(Encoding::kUncompressed,
                                           Encoding::kRle,
                                           Encoding::kBitVector,
                                           Encoding::kDict));

TEST_F(CodecTest, UnsortedColumnRefusesIndexLookup) {
  std::vector<Value> vals = {5, 1, 9, 2};
  auto reader = WriteAndOpen("unsorted", Encoding::kUncompressed, vals);
  EXPECT_FALSE(reader->meta().sorted);
  EXPECT_FALSE(reader->SupportsIndexLookup(Predicate::LessThan(3)));
  EXPECT_FALSE(reader->LowerBound(3, false).ok());
}

TEST_F(CodecTest, SortedDetectionSurvivesRuns) {
  auto w = ColumnWriter::Create(files_.get(), "sruns", Encoding::kRle);
  ASSERT_TRUE(w.ok());
  ASSERT_OK((*w)->AppendRun(1, 100));
  ASSERT_OK((*w)->AppendRun(5, 100));
  ASSERT_OK((*w)->AppendRun(5, 50));
  ASSERT_OK_AND_ASSIGN(codec::ColumnMeta meta, (*w)->Finish());
  EXPECT_TRUE(meta.sorted);

  auto w2 = ColumnWriter::Create(files_.get(), "nruns", Encoding::kRle);
  ASSERT_TRUE(w2.ok());
  ASSERT_OK((*w2)->AppendRun(5, 100));
  ASSERT_OK((*w2)->AppendRun(1, 100));
  ASSERT_OK_AND_ASSIGN(codec::ColumnMeta meta2, (*w2)->Finish());
  EXPECT_FALSE(meta2.sorted);
}

TEST_F(CodecTest, CorruptSidecarRejected) {
  std::vector<char> garbage = {'x', 'y', 'z'};
  EXPECT_FALSE(codec::ColumnMeta::Deserialize(garbage).ok());
}

TEST_F(CodecTest, AppendRunFastPath) {
  auto writer_r = ColumnWriter::Create(files_.get(), "runs", Encoding::kRle);
  ASSERT_TRUE(writer_r.ok());
  auto writer = std::move(writer_r).value();
  ASSERT_OK(writer->AppendRun(7, 10000));
  ASSERT_OK(writer->AppendRun(8, 1));
  ASSERT_OK(writer->AppendRun(8, 4999));  // extends the same run
  ASSERT_OK_AND_ASSIGN(codec::ColumnMeta meta, writer->Finish());
  EXPECT_EQ(meta.num_values, 15000u);
  EXPECT_EQ(meta.num_runs, 2u);

  auto reader_r = ColumnReader::Open(files_.get(), pool_.get(), "runs");
  ASSERT_TRUE(reader_r.ok());
  auto all = ReadAll(**reader_r);
  ASSERT_EQ(all.size(), 15000u);
  EXPECT_EQ(all[0], 7);
  EXPECT_EQ(all[9999], 7);
  EXPECT_EQ(all[10000], 8);
  EXPECT_EQ(all[14999], 8);
}

}  // namespace
}  // namespace cstore
